//! Transactional red-black tree.
//!
//! One of the paper's three microbenchmark structures ("we name the
//! benchmarks by the type of data structure: hash table, red-black tree, and
//! sorted linked list"). The tree gives the key-based executor a middle
//! ground between the hash table (perfect key → data-location correlation)
//! and the sorted list (weak correlation): transactions on nearby keys touch
//! overlapping root-to-leaf paths, so clustering them on one worker improves
//! cache locality and avoids conflicts around rebalancing.
//!
//! ### Representation
//!
//! Every node lives in its own [`TVar`]; links are `Option<TVar<Node>>`.
//! There are no parent pointers (they would create `Arc` cycles); instead the
//! insertion and deletion algorithms carry an explicit ancestor path, which
//! is the standard CLRS bottom-up algorithm re-expressed for a
//! copy-on-write, no-parent-pointer heap. The conflict unit is a single node,
//! matching the Java DSTM benchmark the paper builds on.

use katme_stm::{Stm, TVar, Transaction, TxError};

use crate::dictionary::{Dictionary, Key, TxDictionary, Value};

/// Node colour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Color {
    Red,
    Black,
}

/// Child direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Left,
    Right,
}

impl Dir {
    fn opposite(self) -> Dir {
        match self {
            Dir::Left => Dir::Right,
            Dir::Right => Dir::Left,
        }
    }
}

/// A tree node. Cloned on every transactional update (copy-on-write).
#[derive(Clone)]
struct Node {
    key: Key,
    value: Value,
    color: Color,
    left: Option<TVar<Node>>,
    right: Option<TVar<Node>>,
}

impl Node {
    fn new_red(key: Key, value: Value) -> Self {
        Node {
            key,
            value,
            color: Color::Red,
            left: None,
            right: None,
        }
    }

    fn child(&self, dir: Dir) -> Option<TVar<Node>> {
        match dir {
            Dir::Left => self.left.clone(),
            Dir::Right => self.right.clone(),
        }
    }

    fn with_child(&self, dir: Dir, link: Option<TVar<Node>>) -> Node {
        let mut n = self.clone();
        match dir {
            Dir::Left => n.left = link,
            Dir::Right => n.right = link,
        }
        n
    }

    fn with_color(&self, color: Color) -> Node {
        let mut n = self.clone();
        n.color = color;
        n
    }
}

/// Where the link *above* a node lives: either the tree's root slot or a
/// specific child slot of a parent node.
enum Slot {
    Root,
    Child(TVar<Node>, Dir),
}

/// A transactional red-black tree implementing the abstract dictionary.
pub struct RbTree {
    stm: Stm,
    root: TVar<Option<TVar<Node>>>,
}

impl RbTree {
    /// Create an empty tree.
    pub fn new(stm: Stm) -> Self {
        RbTree {
            stm,
            root: TVar::new(None),
        }
    }

    /// In-order keys (validation/diagnostics; single transaction).
    pub fn keys(&self) -> Vec<Key> {
        self.stm.atomically(|tx| {
            let mut out = Vec::new();
            let root = (*tx.read(&self.root)?).clone();
            self.collect_keys(tx, &root, &mut out)?;
            Ok(out)
        })
    }

    fn collect_keys(
        &self,
        tx: &mut Transaction<'_>,
        link: &Option<TVar<Node>>,
        out: &mut Vec<Key>,
    ) -> Result<(), TxError> {
        if let Some(node_tv) = link {
            let node = tx.read(node_tv)?;
            let (left, right) = (node.left.clone(), node.right.clone());
            self.collect_keys(tx, &left, out)?;
            out.push(node.key);
            self.collect_keys(tx, &right, out)?;
        }
        Ok(())
    }

    fn collect_entries(
        &self,
        tx: &mut Transaction<'_>,
        link: &Option<TVar<Node>>,
        out: &mut Vec<(Key, Value)>,
    ) -> Result<(), TxError> {
        if let Some(node_tv) = link {
            let node = tx.read(node_tv)?;
            let (left, right) = (node.left.clone(), node.right.clone());
            self.collect_entries(tx, &left, out)?;
            out.push((node.key, node.value));
            self.collect_entries(tx, &right, out)?;
        }
        Ok(())
    }

    /// Check every red-black invariant, returning the black height on
    /// success and a description of the violation otherwise. Used by the
    /// property tests and available to applications as a self-check.
    pub fn check_invariants(&self) -> Result<usize, String> {
        self.stm.atomically(|tx| {
            let root = (*tx.read(&self.root)?).clone();
            if let Some(node_tv) = &root {
                if tx.read(node_tv)?.color == Color::Red {
                    return Ok(Err("root is red".to_string()));
                }
            }
            Ok(self.check_subtree(tx, &root, None, None))
        })
    }

    fn check_subtree(
        &self,
        tx: &mut Transaction<'_>,
        link: &Option<TVar<Node>>,
        low: Option<Key>,
        high: Option<Key>,
    ) -> Result<usize, String> {
        let Some(node_tv) = link else { return Ok(1) };
        let node = tx
            .read(node_tv)
            .map_err(|e| format!("stm error during check: {e}"))?;
        if let Some(l) = low {
            if node.key <= l {
                return Err(format!("ordering violated: {} <= {}", node.key, l));
            }
        }
        if let Some(h) = high {
            if node.key >= h {
                return Err(format!("ordering violated: {} >= {}", node.key, h));
            }
        }
        if node.color == Color::Red {
            for c in [&node.left, &node.right].into_iter().flatten() {
                let cn = tx.read(c).map_err(|e| format!("stm error: {e}"))?;
                if cn.color == Color::Red {
                    return Err(format!("red node {} has a red child", node.key));
                }
            }
        }
        let (left, right) = (node.left.clone(), node.right.clone());
        let lh = self.check_subtree(tx, &left, low, Some(node.key))?;
        let rh = self.check_subtree(tx, &right, Some(node.key), high)?;
        if lh != rh {
            return Err(format!(
                "black-height mismatch at {}: left {lh}, right {rh}",
                node.key
            ));
        }
        Ok(lh + usize::from(node.color == Color::Black))
    }

    // ----- shared low-level helpers -------------------------------------

    fn set_slot(
        &self,
        tx: &mut Transaction<'_>,
        slot: &Slot,
        link: Option<TVar<Node>>,
    ) -> Result<(), TxError> {
        match slot {
            Slot::Root => tx.write(&self.root, link),
            Slot::Child(parent, dir) => {
                let dir = *dir;
                tx.modify(parent, move |n| n.with_child(dir, link.clone()))
            }
        }
    }

    fn set_color(
        &self,
        tx: &mut Transaction<'_>,
        node_tv: &TVar<Node>,
        color: Color,
    ) -> Result<(), TxError> {
        let node = tx.read(node_tv)?;
        if node.color != color {
            tx.write(node_tv, node.with_color(color))?;
        }
        Ok(())
    }

    /// Rotate `node` *toward* `dir` (a classic left rotation is
    /// `rotate(.., Dir::Left)`: the node moves down to the left and its right
    /// child rises). `slot` is the link above `node`.
    fn rotate(
        &self,
        tx: &mut Transaction<'_>,
        slot: &Slot,
        node_tv: &TVar<Node>,
        dir: Dir,
    ) -> Result<TVar<Node>, TxError> {
        let node = tx.read(node_tv)?;
        let rising_tv = node
            .child(dir.opposite())
            .expect("rotation requires a child on the rising side");
        let rising = tx.read(&rising_tv)?;
        tx.write(node_tv, node.with_child(dir.opposite(), rising.child(dir)))?;
        tx.write(&rising_tv, rising.with_child(dir, Some(node_tv.clone())))?;
        self.set_slot(tx, slot, Some(rising_tv.clone()))?;
        Ok(rising_tv)
    }

    fn slot_above(path: &[(TVar<Node>, Dir)], depth_from_top: usize) -> Slot {
        // `depth_from_top` = how many trailing entries to ignore; 0 means the
        // slot above the node whose parent is the last path entry.
        if path.len() > depth_from_top {
            let (parent, dir) = &path[path.len() - 1 - depth_from_top];
            Slot::Child(parent.clone(), *dir)
        } else {
            Slot::Root
        }
    }

    // ----- insertion ------------------------------------------------------

    fn insert_fixup(
        &self,
        tx: &mut Transaction<'_>,
        mut path: Vec<(TVar<Node>, Dir)>,
        mut z: TVar<Node>,
    ) -> Result<(), TxError> {
        loop {
            let Some((p_tv, zdir)) = path.pop() else {
                // z is the root: the root is always black.
                self.set_color(tx, &z, Color::Black)?;
                return Ok(());
            };
            if tx.read(&p_tv)?.color == Color::Black {
                return Ok(());
            }
            // A red parent cannot be the root, so a grandparent exists.
            let (g_tv, pdir) = path.pop().expect("red parent implies a grandparent exists");
            let g = tx.read(&g_tv)?;
            let uncle = g.child(pdir.opposite());
            let uncle_is_red = match &uncle {
                Some(u) => tx.read(u)?.color == Color::Red,
                None => false,
            };

            if uncle_is_red {
                // Case 1: recolour and continue from the grandparent.
                self.set_color(tx, &p_tv, Color::Black)?;
                if let Some(u) = &uncle {
                    self.set_color(tx, u, Color::Black)?;
                }
                self.set_color(tx, &g_tv, Color::Red)?;
                z = g_tv;
                continue;
            }

            // Cases 2/3: rotations terminate the loop.
            let slot_above_g = Self::slot_above(&path, 0);
            if zdir != pdir {
                // Case 2 (inner child): rotate the parent so the violation
                // becomes an outer-child violation rooted at `z`.
                self.rotate(tx, &Slot::Child(g_tv.clone(), pdir), &p_tv, pdir)?;
                self.set_color(tx, &z, Color::Black)?;
            } else {
                // Case 3 (outer child).
                self.set_color(tx, &p_tv, Color::Black)?;
            }
            self.set_color(tx, &g_tv, Color::Red)?;
            self.rotate(tx, &slot_above_g, &g_tv, pdir.opposite())?;
            return Ok(());
        }
    }

    // ----- deletion -------------------------------------------------------

    fn delete_fixup(
        &self,
        tx: &mut Transaction<'_>,
        mut path: Vec<(TVar<Node>, Dir)>,
        mut x: Option<TVar<Node>>,
    ) -> Result<(), TxError> {
        loop {
            let Some((p_tv, xdir)) = path.last().cloned() else {
                // x is the root: colour it black and stop.
                if let Some(xn) = &x {
                    self.set_color(tx, xn, Color::Black)?;
                }
                return Ok(());
            };

            // A red (or red-and-black) x absorbs the extra blackness.
            if let Some(xn) = &x {
                if tx.read(xn)?.color == Color::Red {
                    self.set_color(tx, xn, Color::Black)?;
                    return Ok(());
                }
            }

            let p = tx.read(&p_tv)?;
            let w_tv = p
                .child(xdir.opposite())
                .expect("a doubly-black node must have a sibling");
            let w = tx.read(&w_tv)?;

            if w.color == Color::Red {
                // Case 1: red sibling — rotate it above the parent so the new
                // sibling is black, then retry.
                self.set_color(tx, &w_tv, Color::Black)?;
                self.set_color(tx, &p_tv, Color::Red)?;
                let slot_above_p = Self::slot_above(&path, 1);
                self.rotate(tx, &slot_above_p, &p_tv, xdir)?;
                // The sibling is now x's grandparent; record it in the path so
                // later rotations above the parent use the correct slot.
                let insert_at = path.len() - 1;
                path.insert(insert_at, (w_tv.clone(), xdir));
                continue;
            }

            let near_link = w.child(xdir);
            let far_link = w.child(xdir.opposite());
            let near_is_red = match &near_link {
                Some(n) => tx.read(n)?.color == Color::Red,
                None => false,
            };
            let far_is_red = match &far_link {
                Some(n) => tx.read(n)?.color == Color::Red,
                None => false,
            };

            if !near_is_red && !far_is_red {
                // Case 2: both nephews black — push the blackness up.
                self.set_color(tx, &w_tv, Color::Red)?;
                path.pop();
                x = Some(p_tv);
                continue;
            }

            // Case 3: far nephew black, near nephew red — rotate the sibling
            // so the far nephew becomes red.
            let (w_tv, far_tv) = if !far_is_red {
                let near_tv = near_link.expect("near nephew is red, so it exists");
                self.set_color(tx, &near_tv, Color::Black)?;
                self.set_color(tx, &w_tv, Color::Red)?;
                self.rotate(
                    tx,
                    &Slot::Child(p_tv.clone(), xdir.opposite()),
                    &w_tv,
                    xdir.opposite(),
                )?;
                let new_w_node = tx.read(&near_tv)?;
                let far = new_w_node
                    .child(xdir.opposite())
                    .expect("old sibling becomes the far nephew after rotation");
                (near_tv, far)
            } else {
                (w_tv, far_link.expect("far nephew is red, so it exists"))
            };

            // Case 4: far nephew red — one rotation finishes the repair.
            let p_color = tx.read(&p_tv)?.color;
            self.set_color(tx, &w_tv, p_color)?;
            self.set_color(tx, &p_tv, Color::Black)?;
            self.set_color(tx, &far_tv, Color::Black)?;
            let slot_above_p = Self::slot_above(&path, 1);
            self.rotate(tx, &slot_above_p, &p_tv, xdir)?;
            return Ok(());
        }
    }
}

impl Dictionary for RbTree {
    fn insert(&self, key: Key, value: Value) -> bool {
        self.stm.atomically(|tx| self.insert_tx(tx, key, value))
    }

    fn remove(&self, key: Key) -> bool {
        self.stm.atomically(|tx| self.remove_tx(tx, key))
    }

    fn lookup(&self, key: Key) -> Option<Value> {
        self.stm.atomically(|tx| self.lookup_tx(tx, key))
    }

    fn len(&self) -> usize {
        self.keys().len()
    }

    fn entries(&self) -> Vec<(Key, Value)> {
        // In-order walk in a single transaction, mirroring keys().
        self.stm.atomically(|tx| {
            let mut out = Vec::new();
            let root = (*tx.read(&self.root)?).clone();
            self.collect_entries(tx, &root, &mut out)?;
            Ok(out)
        })
    }

    fn name(&self) -> &'static str {
        "rbtree"
    }
}

impl TxDictionary for RbTree {
    fn insert_tx(&self, tx: &mut Transaction<'_>, key: Key, value: Value) -> Result<bool, TxError> {
        // Walk down recording the ancestor path.
        let mut path: Vec<(TVar<Node>, Dir)> = Vec::new();
        let mut current = (*tx.read(&self.root)?).clone();
        while let Some(node_tv) = current {
            let node = tx.read(&node_tv)?;
            if node.key == key {
                if node.value != value {
                    tx.write(&node_tv, {
                        let mut n = (*node).clone();
                        n.value = value;
                        n
                    })?;
                }
                return Ok(false);
            }
            let dir = if key < node.key {
                Dir::Left
            } else {
                Dir::Right
            };
            current = node.child(dir);
            path.push((node_tv, dir));
        }

        // Splice in a new red leaf.
        let new_tv = TVar::new(Node::new_red(key, value));
        match path.last() {
            None => tx.write(&self.root, Some(new_tv.clone()))?,
            Some((parent, dir)) => {
                let dir = *dir;
                let child = Some(new_tv.clone());
                tx.modify(parent, move |n| n.with_child(dir, child.clone()))?;
            }
        }
        self.insert_fixup(tx, path, new_tv)?;
        Ok(true)
    }

    fn remove_tx(&self, tx: &mut Transaction<'_>, key: Key) -> Result<bool, TxError> {
        // Find the node, recording the ancestor path.
        let mut path: Vec<(TVar<Node>, Dir)> = Vec::new();
        let mut current = (*tx.read(&self.root)?).clone();
        let mut target: Option<TVar<Node>> = None;
        while let Some(node_tv) = current {
            let node = tx.read(&node_tv)?;
            if node.key == key {
                target = Some(node_tv);
                break;
            }
            let dir = if key < node.key {
                Dir::Left
            } else {
                Dir::Right
            };
            current = node.child(dir);
            path.push((node_tv, dir));
        }
        let Some(z_tv) = target else { return Ok(false) };
        let z = tx.read(&z_tv)?;

        // A node with two children is logically deleted by moving its
        // in-order successor's key/value into it and physically deleting the
        // successor (which has no left child).
        let del_tv = if z.left.is_some() && z.right.is_some() {
            path.push((z_tv.clone(), Dir::Right));
            let mut cur = z.right.clone().expect("checked above");
            loop {
                let c = tx.read(&cur)?;
                match c.left.clone() {
                    Some(left) => {
                        path.push((cur, Dir::Left));
                        cur = left;
                    }
                    None => break,
                }
            }
            let succ = tx.read(&cur)?;
            let (sk, sv) = (succ.key, succ.value);
            tx.modify(&z_tv, move |n| {
                let mut m = n.clone();
                m.key = sk;
                m.value = sv;
                m
            })?;
            cur
        } else {
            z_tv
        };

        // Splice out the physical target, which has at most one child.
        let del = tx.read(&del_tv)?;
        let child = del.left.clone().or_else(|| del.right.clone());
        let slot = Self::slot_above(&path, 0);
        self.set_slot(tx, &slot, child.clone())?;
        if del.color == Color::Black {
            self.delete_fixup(tx, path, child)?;
        }
        Ok(true)
    }

    fn lookup_tx(&self, tx: &mut Transaction<'_>, key: Key) -> Result<Option<Value>, TxError> {
        let mut current = (*tx.read(&self.root)?).clone();
        while let Some(node_tv) = current {
            let node = tx.read(&node_tv)?;
            if node.key == key {
                return Ok(Some(node.value));
            }
            let dir = if key < node.key {
                Dir::Left
            } else {
                Dir::Right
            };
            current = node.child(dir);
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;
    use std::thread;

    fn tree() -> RbTree {
        RbTree::new(Stm::default())
    }

    fn assert_valid(t: &RbTree) {
        if let Err(msg) = t.check_invariants() {
            panic!("red-black invariants violated: {msg}\nkeys: {:?}", t.keys());
        }
    }

    #[test]
    fn empty_tree_is_valid() {
        let t = tree();
        assert_valid(&t);
        assert_eq!(t.len(), 0);
        assert_eq!(t.lookup(1), None);
        assert!(!t.remove(1));
    }

    #[test]
    fn ascending_inserts_stay_balanced() {
        let t = tree();
        for key in 0..200u32 {
            assert!(t.insert(key, u64::from(key)));
            assert_valid(&t);
        }
        assert_eq!(t.keys(), (0..200).collect::<Vec<_>>());
        // A valid red-black tree with 200 nodes has black height <= 9-ish;
        // check it did not degenerate into a list.
        let black_height = t.check_invariants().unwrap();
        assert!(black_height <= 10, "black height {black_height} too large");
    }

    #[test]
    fn descending_and_alternating_inserts_stay_balanced() {
        let t = tree();
        for key in (0..100u32).rev() {
            t.insert(key, 0);
        }
        for key in (100..200u32).step_by(2) {
            t.insert(key, 0);
        }
        assert_valid(&t);
        assert_eq!(t.len(), 150);
    }

    #[test]
    fn duplicate_insert_updates_value() {
        let t = tree();
        assert!(t.insert(10, 1));
        assert!(!t.insert(10, 2));
        assert_eq!(t.lookup(10), Some(2));
        assert_eq!(t.len(), 1);
        assert_valid(&t);
    }

    #[test]
    fn remove_leaf_internal_and_root() {
        let t = tree();
        for key in [50u32, 25, 75, 10, 30, 60, 90, 5, 28, 65] {
            t.insert(key, 0);
        }
        assert_valid(&t);
        assert!(t.remove(5)); // leaf
        assert_valid(&t);
        assert!(t.remove(25)); // internal with two children
        assert_valid(&t);
        assert!(t.remove(50)); // (possibly) the root
        assert_valid(&t);
        assert!(!t.remove(50));
        assert_eq!(t.keys(), vec![10, 28, 30, 60, 65, 75, 90]);
    }

    #[test]
    fn drain_everything_in_random_order() {
        use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
        let t = tree();
        let mut keys: Vec<u32> = (0..150).collect();
        for &k in &keys {
            t.insert(k, 0);
        }
        let mut rng = StdRng::seed_from_u64(3);
        keys.shuffle(&mut rng);
        for (i, &k) in keys.iter().enumerate() {
            assert!(t.remove(k), "key {k} missing at step {i}");
            assert_valid(&t);
        }
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn matches_reference_model_under_random_ops() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let t = tree();
        let mut model: BTreeMap<Key, Value> = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(99);
        for step in 0..3_000 {
            let key = rng.gen_range(0..300u32);
            match rng.gen_range(0..3) {
                0 => {
                    let value = rng.gen::<u64>();
                    let expected = !model.contains_key(&key);
                    model.insert(key, value);
                    assert_eq!(t.insert(key, value), expected, "insert {key} at {step}");
                }
                1 => {
                    let expected = model.remove(&key).is_some();
                    assert_eq!(t.remove(key), expected, "remove {key} at {step}");
                }
                _ => {
                    assert_eq!(t.lookup(key), model.get(&key).copied(), "lookup {key}");
                }
            }
            if step % 250 == 0 {
                assert_valid(&t);
                assert_eq!(t.keys(), model.keys().copied().collect::<Vec<_>>());
            }
        }
        assert_valid(&t);
        assert_eq!(t.keys(), model.keys().copied().collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_disjoint_inserts_keep_invariants() {
        let t = Arc::new(tree());
        let threads = 4u32;
        let per_thread = 150u32;
        thread::scope(|s| {
            for p in 0..threads {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..per_thread {
                        t.insert(i * threads + p, u64::from(p));
                    }
                });
            }
        });
        assert_eq!(t.len(), (threads * per_thread) as usize);
        assert_valid(&t);
    }

    #[test]
    fn concurrent_mixed_workload_keeps_invariants() {
        let t = Arc::new(tree());
        for key in (0..400u32).step_by(2) {
            t.insert(key, 0);
        }
        thread::scope(|s| {
            for worker in 0..4u32 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    use rand::{rngs::StdRng, Rng, SeedableRng};
                    let mut rng = StdRng::seed_from_u64(u64::from(worker));
                    for _ in 0..300 {
                        let key = rng.gen_range(0..400u32);
                        if rng.gen_bool(0.5) {
                            t.insert(key, u64::from(worker));
                        } else {
                            t.remove(key);
                        }
                    }
                });
            }
        });
        assert_valid(&t);
        let keys = t.keys();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }
}
