//! Transactional stack.
//!
//! Section 3.1 of the paper uses a stack as the simplest example of key
//! generation: every push and pop starts by touching the top-of-stack
//! element, so the "key" supplied to the scheduler is a constant per stack.
//! That tells the executor that all operations on the same stack will race
//! for the same data, and it can serialize them on one worker.
//!
//! The stack is a purely functional cons list behind a single [`TVar`] (the
//! top pointer), which makes the whole stack one conflict unit — exactly the
//! behaviour the constant key advertises.

use std::sync::Arc;

use katme_stm::{Stm, TVar, Transaction, TxError};

/// A persistent cons cell.
struct Cell<T> {
    value: T,
    next: Option<Arc<Cell<T>>>,
}

/// A transactional LIFO stack.
pub struct TxStack<T> {
    stm: Stm,
    top: TVar<Option<Arc<Cell<T>>>>,
}

impl<T: Clone + Send + Sync + 'static> TxStack<T> {
    /// Create an empty stack.
    pub fn new(stm: Stm) -> Self {
        TxStack {
            stm,
            top: TVar::new(None),
        }
    }

    /// The constant transaction key for this stack (see module docs). Every
    /// operation on the same stack shares it.
    pub fn transaction_key(&self) -> u64 {
        self.top.id()
    }

    /// Push a value.
    pub fn push(&self, value: T) {
        self.stm.atomically(|tx| self.push_tx(tx, value.clone()))
    }

    /// Pop the most recently pushed value, or `None` when empty.
    pub fn pop(&self) -> Option<T> {
        self.stm.atomically(|tx| self.pop_tx(tx))
    }

    /// Peek at the most recently pushed value without removing it.
    pub fn peek(&self) -> Option<T> {
        self.stm.atomically(|tx| {
            let top = tx.read(&self.top)?;
            Ok((*top).as_ref().map(|cell| cell.value.clone()))
        })
    }

    /// Number of elements (walks the list; diagnostics only).
    pub fn len(&self) -> usize {
        self.stm.atomically(|tx| {
            let mut n = 0;
            let top = tx.read(&self.top)?;
            let mut cursor = (*top).clone();
            while let Some(cell) = cursor {
                n += 1;
                cursor = cell.next.clone();
            }
            Ok(n)
        })
    }

    /// True when the stack holds no elements.
    pub fn is_empty(&self) -> bool {
        self.stm.atomically(|tx| Ok(tx.read(&self.top)?.is_none()))
    }

    /// Transactional push, composable with other operations.
    pub fn push_tx(&self, tx: &mut Transaction<'_>, value: T) -> Result<(), TxError> {
        let top = tx.read(&self.top)?;
        let cell = Arc::new(Cell {
            value,
            next: (*top).clone(),
        });
        tx.write(&self.top, Some(cell))
    }

    /// Transactional pop, composable with other operations.
    pub fn pop_tx(&self, tx: &mut Transaction<'_>) -> Result<Option<T>, TxError> {
        let top = tx.read(&self.top)?;
        match (*top).clone() {
            Some(cell) => {
                tx.write(&self.top, cell.next.clone())?;
                Ok(Some(cell.value.clone()))
            }
            None => Ok(None),
        }
    }

    /// Pop that *waits* (via transactional retry) until an element is
    /// available. Useful for producer/consumer style examples.
    pub fn pop_blocking(&self) -> T {
        self.stm.atomically(|tx| match self.pop_tx(tx)? {
            Some(value) => Ok(value),
            None => tx.retry(),
        })
    }
}

impl<T> Drop for TxStack<T> {
    fn drop(&mut self) {
        // A tall stack is one long cons chain; letting it drop naturally
        // frees the cells recursively, one stack frame per element. Walk it
        // iteratively instead, stopping at the first cell a live snapshot
        // still shares (that holder frees the remaining, shorter tail).
        let top = self.top.replace_now(None);
        let mut cursor = Arc::try_unwrap(top).unwrap_or_else(|shared| shared.as_ref().clone());
        while let Some(cell) = cursor {
            match Arc::try_unwrap(cell) {
                Ok(mut inner) => cursor = inner.next.take(),
                Err(_shared) => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use std::thread;

    #[test]
    fn dropping_a_tall_stack_is_iterative() {
        let mut next: Option<StdArc<Cell<u64>>> = None;
        for value in 0..200_000u64 {
            next = Some(StdArc::new(Cell { value, next }));
        }
        let tall = TxStack {
            stm: Stm::default(),
            top: TVar::new(next),
        };
        // A recursive drop would overflow this tiny stack immediately.
        thread::Builder::new()
            .stack_size(64 * 1024)
            .spawn(move || drop(tall))
            .expect("spawn drop thread")
            .join()
            .expect("iterative drop must not overflow the stack");
    }

    #[test]
    fn lifo_order() {
        let s = TxStack::new(Stm::default());
        s.push(1);
        s.push(2);
        s.push(3);
        assert_eq!(s.peek(), Some(3));
        assert_eq!(s.pop(), Some(3));
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn len_tracks_contents() {
        let s = TxStack::new(Stm::default());
        assert_eq!(s.len(), 0);
        for i in 0..10 {
            s.push(i);
        }
        assert_eq!(s.len(), 10);
        s.pop();
        assert_eq!(s.len(), 9);
    }

    #[test]
    fn transaction_key_is_stable() {
        let s = TxStack::<u32>::new(Stm::default());
        let k = s.transaction_key();
        s.push(1);
        s.pop();
        assert_eq!(s.transaction_key(), k);
    }

    #[test]
    fn concurrent_pushes_and_pops_conserve_items() {
        let s = StdArc::new(TxStack::new(Stm::default()));
        let producers = 3u64;
        let per_producer = 500u64;

        thread::scope(|scope| {
            for p in 0..producers {
                let s = StdArc::clone(&s);
                scope.spawn(move || {
                    for i in 0..per_producer {
                        s.push(p * per_producer + i);
                    }
                });
            }
        });

        let mut seen = std::collections::HashSet::new();
        while let Some(v) = s.pop() {
            assert!(seen.insert(v), "duplicate value {v}");
        }
        assert_eq!(seen.len(), (producers * per_producer) as usize);
    }

    #[test]
    fn blocking_pop_waits_for_producer() {
        let s = StdArc::new(TxStack::new(Stm::default()));
        let consumer = {
            let s = StdArc::clone(&s);
            thread::spawn(move || s.pop_blocking())
        };
        thread::sleep(std::time::Duration::from_millis(20));
        s.push(42u32);
        assert_eq!(consumer.join().unwrap(), 42);
    }

    #[test]
    fn composed_transfer_between_stacks_is_atomic() {
        let stm = Stm::default();
        let a = TxStack::new(stm.clone());
        let b = TxStack::new(stm.clone());
        a.push(7u32);
        stm.atomically(|tx| {
            if let Some(v) = a.pop_tx(tx)? {
                b.push_tx(tx, v)?;
            }
            Ok(())
        });
        assert!(a.is_empty());
        assert_eq!(b.pop(), Some(7));
    }
}
