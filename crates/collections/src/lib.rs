//! # katme-collections — transactional dictionary data structures
//!
//! The concurrent data structures the KATME paper benchmarks, built on the
//! [`katme_stm`] substrate:
//!
//! * [`HashTable`] — externally chained hash table with the paper's 30031
//!   buckets; one [`katme_stm::TVar`] per bucket (Figure 3's structure).
//! * [`RbTree`] — red-black tree with one `TVar` per node.
//! * [`SortedList`] — sorted singly linked list with one `TVar` per link.
//! * [`TxStack`] — the stack example of §3.1 (constant transaction key).
//! * [`LockedDictionary`] — coarse-grained lock baseline for ablations.
//!
//! All dictionary structures implement [`Dictionary`] (whole-operation
//! transactions) and [`TxDictionary`] (composable, runs inside a caller's
//! transaction), so the executor, harness, benches and tests can treat them
//! uniformly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dictionary;
pub mod durable;
pub mod hashtable;
pub mod locked;
pub mod rbtree;
pub mod sorted_list;
pub mod stack;

pub use dictionary::{DictOp, Dictionary, Key, TxDictionary, Value};
pub use durable::{
    apply_op, decode_op, decode_snapshot, encode_op, encode_op_into, encode_snapshot,
    restore_snapshot,
};
pub use hashtable::{HashTable, PAPER_BUCKETS};
pub use locked::LockedDictionary;
pub use rbtree::RbTree;
pub use sorted_list::SortedList;
pub use stack::TxStack;

/// The benchmark structures the paper names, for sweeping in the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StructureKind {
    /// Externally chained hash table (30031 buckets).
    HashTable,
    /// Red-black tree.
    RbTree,
    /// Sorted singly linked list.
    SortedList,
}

impl StructureKind {
    /// All benchmark structures.
    pub const ALL: [StructureKind; 3] = [
        StructureKind::HashTable,
        StructureKind::RbTree,
        StructureKind::SortedList,
    ];

    /// Name used in reports (matches the paper's benchmark names).
    pub fn name(&self) -> &'static str {
        match self {
            StructureKind::HashTable => "hashtable",
            StructureKind::RbTree => "rbtree",
            StructureKind::SortedList => "sorted-list",
        }
    }

    /// Instantiate the structure over the given STM runtime.
    pub fn build(&self, stm: katme_stm::Stm) -> std::sync::Arc<dyn TxDictionary> {
        match self {
            StructureKind::HashTable => std::sync::Arc::new(HashTable::new(stm)),
            StructureKind::RbTree => std::sync::Arc::new(RbTree::new(stm)),
            StructureKind::SortedList => std::sync::Arc::new(SortedList::new(stm)),
        }
    }
}

impl std::fmt::Display for StructureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for StructureKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "hashtable" | "hash" | "hash-table" => Ok(StructureKind::HashTable),
            "rbtree" | "tree" | "red-black-tree" => Ok(StructureKind::RbTree),
            "sorted-list" | "list" | "sortedlist" => Ok(StructureKind::SortedList),
            other => Err(format!("unknown structure '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    #[test]
    fn structure_kind_round_trip() {
        for kind in StructureKind::ALL {
            assert_eq!(StructureKind::from_str(kind.name()).unwrap(), kind);
        }
        assert!(StructureKind::from_str("bogus").is_err());
    }

    #[test]
    fn build_produces_working_dictionaries() {
        for kind in StructureKind::ALL {
            let dict = kind.build(katme_stm::Stm::default());
            assert!(dict.insert(10, 1));
            assert!(dict.insert(20, 2));
            assert!(!dict.insert(10, 3));
            assert_eq!(dict.lookup(10), Some(3));
            assert!(dict.remove(20));
            assert_eq!(dict.len(), 1, "{kind} length mismatch");
        }
    }
}
