//! Transactional sorted (singly) linked list.
//!
//! One of the paper's three microbenchmark structures. A sorted list is the
//! worst case for key-based scheduling: every operation traverses the list
//! from the head, so its read set covers a prefix of the whole structure and
//! "the transaction key predicts the data access pattern significantly
//! \[more\] weakly" than for the hash table or tree — which is exactly why the
//! paper reports a smaller (but still positive) benefit for it.
//!
//! Conflict granularity: each node's `next` pointer lives in its own
//! [`TVar`], so two transactions conflict when one rewrites a link the other
//! traversed — the classic STM linked-list behaviour.

use std::sync::Arc;

use katme_stm::{Stm, TVar, Transaction, TxError};

use crate::dictionary::{Dictionary, Key, TxDictionary, Value};

/// A link to the next node (or the end of the list).
type Link = Option<Arc<Node>>;

/// A list node. The key and value are immutable; only the `next` link is
/// transactional. Replacing a value therefore replaces the node.
struct Node {
    key: Key,
    value: Value,
    next: TVar<Link>,
}

/// A transactional sorted linked list implementing the abstract dictionary.
pub struct SortedList {
    stm: Stm,
    head: TVar<Link>,
}

impl SortedList {
    /// Create an empty list.
    pub fn new(stm: Stm) -> Self {
        SortedList {
            stm,
            head: TVar::new(None),
        }
    }

    /// Walk to the insertion point for `key`.
    ///
    /// Returns `(prev_link, current)` where `prev_link` is the [`TVar`]
    /// holding the link that either points at the node with `key` (when
    /// `current` is `Some` and has that key) or where a node with `key`
    /// would be spliced in.
    fn search(&self, tx: &mut Transaction<'_>, key: Key) -> Result<(TVar<Link>, Link), TxError> {
        let mut prev_link = self.head.clone();
        loop {
            let current = tx.read(&prev_link)?;
            match current.as_ref() {
                Some(node) if node.key < key => {
                    let next_link = node.next.clone();
                    prev_link = next_link;
                }
                _ => return Ok((prev_link, (*current).clone())),
            }
        }
    }

    /// Collect the keys in order (validation/diagnostics; runs in a single
    /// transaction).
    pub fn keys(&self) -> Vec<Key> {
        self.stm.atomically(|tx| {
            let mut keys = Vec::new();
            let mut link = tx.read(&self.head)?;
            while let Some(node) = link.as_ref() {
                keys.push(node.key);
                link = tx.read(&node.next)?;
            }
            Ok(keys)
        })
    }
}

impl Dictionary for SortedList {
    fn insert(&self, key: Key, value: Value) -> bool {
        self.stm.atomically(|tx| self.insert_tx(tx, key, value))
    }

    fn remove(&self, key: Key) -> bool {
        self.stm.atomically(|tx| self.remove_tx(tx, key))
    }

    fn lookup(&self, key: Key) -> Option<Value> {
        self.stm.atomically(|tx| self.lookup_tx(tx, key))
    }

    fn len(&self) -> usize {
        self.keys().len()
    }

    fn entries(&self) -> Vec<(Key, Value)> {
        // Same single-transaction walk as keys(), carrying the values along.
        self.stm.atomically(|tx| {
            let mut entries = Vec::new();
            let mut link = tx.read(&self.head)?;
            while let Some(node) = link.as_ref() {
                entries.push((node.key, node.value));
                link = tx.read(&node.next)?;
            }
            Ok(entries)
        })
    }

    fn name(&self) -> &'static str {
        "sorted-list"
    }
}

impl TxDictionary for SortedList {
    fn insert_tx(&self, tx: &mut Transaction<'_>, key: Key, value: Value) -> Result<bool, TxError> {
        let (prev_link, current) = self.search(tx, key)?;
        match current.as_ref() {
            Some(node) if node.key == key => {
                if node.value == value {
                    return Ok(false);
                }
                // Replace the node to update the value (key/value are
                // immutable per node).
                let next = tx.read(&node.next)?;
                let replacement = Arc::new(Node {
                    key,
                    value,
                    next: TVar::new((*next).clone()),
                });
                tx.write(&prev_link, Some(replacement))?;
                Ok(false)
            }
            _ => {
                let new_node = Arc::new(Node {
                    key,
                    value,
                    next: TVar::new(current),
                });
                tx.write(&prev_link, Some(new_node))?;
                Ok(true)
            }
        }
    }

    fn remove_tx(&self, tx: &mut Transaction<'_>, key: Key) -> Result<bool, TxError> {
        let (prev_link, current) = self.search(tx, key)?;
        match current.as_ref() {
            Some(node) if node.key == key => {
                let next = tx.read(&node.next)?;
                tx.write(&prev_link, (*next).clone())?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    fn lookup_tx(&self, tx: &mut Transaction<'_>, key: Key) -> Result<Option<Value>, TxError> {
        let (_, current) = self.search(tx, key)?;
        Ok(match current.as_ref() {
            Some(node) if node.key == key => Some(node.value),
            _ => None,
        })
    }
}

impl Drop for SortedList {
    fn drop(&mut self) {
        // Letting the fields drop naturally would free the nodes recursively
        // (head → node → next `TVar` → node → …), one stack frame per
        // element — a few thousand elements overflow a 2 MiB thread stack.
        // Sever each link before its node drops so the chain frees
        // iteratively. `replace_now` is sound here: the list is being
        // dropped, so no transaction can reach these variables anymore.
        let mut link = take_link(self.head.replace_now(None));
        while let Some(node) = link {
            let next = node.next.replace_now(None);
            // With its `next` severed, this node frees without recursing —
            // even if a stale snapshot elsewhere still holds an `Arc` to it.
            drop(node);
            link = take_link(next);
        }
    }
}

/// Unwrap a displaced link snapshot, cloning the inner `Arc` handle when the
/// snapshot itself is still shared.
fn take_link(snapshot: Arc<Link>) -> Link {
    Arc::try_unwrap(snapshot).unwrap_or_else(|shared| shared.as_ref().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Arc as StdArc;
    use std::thread;

    fn list() -> SortedList {
        SortedList::new(Stm::default())
    }

    #[test]
    fn dropping_a_long_list_is_iterative() {
        // Build the chain directly — transactional inserts walk from the
        // head, which is O(n^2) for a list this long.
        let mut link: Link = None;
        for key in (0..200_000u32).rev() {
            link = Some(StdArc::new(Node {
                key,
                value: 0,
                next: TVar::new(link),
            }));
        }
        let long = SortedList {
            stm: Stm::default(),
            head: TVar::new(link),
        };
        // A recursive drop would overflow this tiny stack immediately.
        thread::Builder::new()
            .stack_size(64 * 1024)
            .spawn(move || drop(long))
            .expect("spawn drop thread")
            .join()
            .expect("iterative drop must not overflow the stack");
    }

    #[test]
    fn insert_keeps_sorted_order() {
        let l = list();
        for key in [5u32, 1, 9, 3, 7] {
            assert!(l.insert(key, u64::from(key)));
        }
        assert_eq!(l.keys(), vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn duplicate_insert_updates_value() {
        let l = list();
        assert!(l.insert(4, 40));
        assert!(!l.insert(4, 44));
        assert_eq!(l.lookup(4), Some(44));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn remove_middle_head_and_tail() {
        let l = list();
        for key in 1..=5u32 {
            l.insert(key, 0);
        }
        assert!(l.remove(3)); // middle
        assert!(l.remove(1)); // head
        assert!(l.remove(5)); // tail
        assert!(!l.remove(3));
        assert_eq!(l.keys(), vec![2, 4]);
    }

    #[test]
    fn lookup_missing_returns_none() {
        let l = list();
        l.insert(2, 20);
        assert_eq!(l.lookup(1), None);
        assert_eq!(l.lookup(3), None);
        assert_eq!(l.lookup(2), Some(20));
    }

    #[test]
    fn matches_reference_model_under_random_ops() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let l = list();
        let mut model: BTreeMap<Key, Value> = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_500 {
            let key = rng.gen_range(0..60u32);
            if rng.gen_bool(0.5) {
                let value = rng.gen::<u64>();
                let expected = !model.contains_key(&key);
                model.insert(key, value);
                assert_eq!(l.insert(key, value), expected);
            } else {
                let expected = model.remove(&key).is_some();
                assert_eq!(l.remove(key), expected);
            }
        }
        assert_eq!(l.keys(), model.keys().copied().collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_inserts_preserve_all_keys_and_order() {
        let l = StdArc::new(list());
        let threads = 4u32;
        let per_thread = 100u32;
        thread::scope(|s| {
            for p in 0..threads {
                let l = StdArc::clone(&l);
                s.spawn(move || {
                    for i in 0..per_thread {
                        l.insert(i * threads + p, 1);
                    }
                });
            }
        });
        let keys = l.keys();
        assert_eq!(keys.len(), (threads * per_thread) as usize);
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys must be sorted");
    }

    #[test]
    fn concurrent_insert_remove_stays_consistent() {
        let l = StdArc::new(list());
        for key in 0..50u32 {
            l.insert(key, 0);
        }
        thread::scope(|s| {
            let l1 = StdArc::clone(&l);
            s.spawn(move || {
                for key in 0..50u32 {
                    l1.remove(key);
                }
            });
            let l2 = StdArc::clone(&l);
            s.spawn(move || {
                for key in 50..100u32 {
                    l2.insert(key, 1);
                }
            });
        });
        let keys = l.keys();
        assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "keys must stay sorted"
        );
        assert_eq!(keys, (50..100u32).collect::<Vec<_>>());
    }
}
