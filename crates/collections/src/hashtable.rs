//! Transactional hash table with external chaining.
//!
//! This is the structure behind the paper's headline experiment (Figure 3):
//! "external chaining from an array of 30031 buckets (a prime number close to
//! half the value range); the hash function is the hash key modulo the number
//! of buckets". A conflict occurs exactly when two concurrent transactions
//! modify the same bucket, so the conflict unit here is one [`TVar`] per
//! bucket.
//!
//! The *transaction key* used by the executor for this structure is the
//! output of the hash function (the bucket index), which is what makes the
//! key-based schedulers effective: transactions with the same bucket index
//! are routed to the same worker and can never conflict.

use std::sync::Arc;

use katme_stm::{Stm, TVar, Transaction, TxError};
use parking_lot::Mutex;

use crate::dictionary::{Dictionary, Key, TxDictionary, Value};

/// Number of buckets used by the paper (a prime close to half of the 16-bit
/// key range, giving a load factor of about one at steady state).
pub const PAPER_BUCKETS: usize = 30031;

/// One bucket: a small sorted vector of key/value pairs behind a single
/// [`TVar`] (the unit of conflict).
type Bucket = Vec<(Key, Value)>;

/// Process-wide pool of vacated bucket buffers. Every committed bucket write
/// retires the previous snapshot; when the committing thread holds the last
/// reference, the buffer lands here and the next clone-on-write rebuild
/// starts from pooled capacity instead of a fresh allocation. Bounded so a
/// burst of huge buckets cannot pin memory forever.
static BUCKET_POOL: Mutex<Vec<Bucket>> = Mutex::new(Vec::new());
const BUCKET_POOL_MAX: usize = 1024;

/// Take a cleared buffer with at least `capacity` free slots from the pool
/// (allocating only on pool miss or when the pooled capacity is too small).
fn pooled_bucket(capacity: usize) -> Bucket {
    let mut bucket = BUCKET_POOL.lock().pop().unwrap_or_default();
    bucket.reserve(capacity);
    bucket
}

/// Publish-side recycler installed on every bucket [`TVar`]: reclaim the
/// displaced snapshot's buffer when no concurrent reader still holds it.
fn recycle_bucket(bucket: Arc<Bucket>) {
    if let Some(mut bucket) = Arc::into_inner(bucket) {
        bucket.clear();
        if bucket.capacity() > 0 {
            let mut pool = BUCKET_POOL.lock();
            if pool.len() < BUCKET_POOL_MAX {
                pool.push(bucket);
            }
        }
    }
}

/// A transactional, externally chained hash table.
pub struct HashTable {
    stm: Stm,
    buckets: Vec<TVar<Bucket>>,
}

impl HashTable {
    /// Create a hash table with the paper's bucket count.
    pub fn new(stm: Stm) -> Self {
        Self::with_buckets(stm, PAPER_BUCKETS)
    }

    /// Create a hash table with an explicit bucket count.
    ///
    /// # Panics
    /// Panics when `buckets` is zero.
    pub fn with_buckets(stm: Stm, buckets: usize) -> Self {
        assert!(buckets > 0, "hash table needs at least one bucket");
        HashTable {
            stm,
            buckets: (0..buckets)
                .map(|_| TVar::with_recycler(Vec::new(), recycle_bucket))
                .collect(),
        }
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The hash function from the paper: dictionary key modulo the bucket
    /// count. Exposed because the executor uses the *hash output* as the
    /// transaction key.
    pub fn bucket_index(&self, key: Key) -> usize {
        key as usize % self.buckets.len()
    }

    /// Number of entries currently stored in the bucket that `key` maps to
    /// (diagnostics for load-factor reports).
    pub fn bucket_len(&self, key: Key) -> usize {
        let idx = self.bucket_index(key);
        self.stm
            .atomically(|tx| Ok(tx.read(&self.buckets[idx])?.len()))
    }

    fn bucket(&self, key: Key) -> &TVar<Bucket> {
        &self.buckets[self.bucket_index(key)]
    }
}

impl Dictionary for HashTable {
    fn insert(&self, key: Key, value: Value) -> bool {
        self.stm.atomically(|tx| self.insert_tx(tx, key, value))
    }

    fn remove(&self, key: Key) -> bool {
        self.stm.atomically(|tx| self.remove_tx(tx, key))
    }

    fn lookup(&self, key: Key) -> Option<Value> {
        self.stm.atomically(|tx| self.lookup_tx(tx, key))
    }

    fn len(&self) -> usize {
        // Summing bucket sizes one transaction per bucket keeps the read set
        // small; the result is a steady-state estimate, which is all the
        // benchmarks need (they only call this when quiescent).
        self.buckets
            .iter()
            .map(|b| self.stm.atomically(|tx| Ok(tx.read(b)?.len())))
            .sum()
    }

    fn entries(&self) -> Vec<(Key, Value)> {
        // One transaction per bucket, like len(): a fuzzy snapshot whose
        // buckets are each internally consistent, which is what the
        // durability plane's checkpoint protocol requires (see
        // katme-durability's crate docs — replay of later ops is idempotent
        // per key, so cross-bucket skew is harmless).
        self.buckets
            .iter()
            .flat_map(|b| self.stm.atomically(|tx| Ok((*tx.read(b)?).clone())))
            .collect()
    }

    fn name(&self) -> &'static str {
        "hashtable"
    }
}

impl TxDictionary for HashTable {
    fn insert_tx(&self, tx: &mut Transaction<'_>, key: Key, value: Value) -> Result<bool, TxError> {
        let bucket = self.bucket(key);
        let entries = tx.read(bucket)?;
        match entries.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(pos) => {
                if entries[pos].1 != value {
                    let mut updated = pooled_bucket(entries.len());
                    updated.extend_from_slice(&entries);
                    updated[pos].1 = value;
                    tx.write(bucket, updated)?;
                }
                Ok(false)
            }
            Err(pos) => {
                // Build the successor in one pass at exact size — cheaper
                // than clone-then-insert (which copies the tail twice and,
                // at capacity == len, reallocates mid-insert).
                let mut updated = pooled_bucket(entries.len() + 1);
                updated.extend_from_slice(&entries[..pos]);
                updated.push((key, value));
                updated.extend_from_slice(&entries[pos..]);
                tx.write(bucket, updated)?;
                Ok(true)
            }
        }
    }

    fn remove_tx(&self, tx: &mut Transaction<'_>, key: Key) -> Result<bool, TxError> {
        let bucket = self.bucket(key);
        let entries = tx.read(bucket)?;
        match entries.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(pos) => {
                let mut updated = pooled_bucket(entries.len() - 1);
                updated.extend_from_slice(&entries[..pos]);
                updated.extend_from_slice(&entries[pos + 1..]);
                tx.write(bucket, updated)?;
                Ok(true)
            }
            Err(_) => Ok(false),
        }
    }

    fn lookup_tx(&self, tx: &mut Transaction<'_>, key: Key) -> Result<Option<Value>, TxError> {
        let entries = tx.read(self.bucket(key))?;
        Ok(entries
            .binary_search_by_key(&key, |(k, _)| *k)
            .ok()
            .map(|pos| entries[pos].1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;
    use std::thread;

    fn small_table() -> HashTable {
        HashTable::with_buckets(Stm::default(), 31)
    }

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let t = small_table();
        assert!(t.insert(5, 50));
        assert!(!t.insert(5, 51), "second insert of same key is an update");
        assert_eq!(t.lookup(5), Some(51));
        assert!(t.contains(5));
        assert!(t.remove(5));
        assert!(!t.remove(5));
        assert_eq!(t.lookup(5), None);
    }

    #[test]
    fn keys_mapping_to_same_bucket_coexist() {
        let t = small_table();
        // 3 and 3+31 collide under modulo hashing.
        assert_eq!(t.bucket_index(3), t.bucket_index(34));
        assert!(t.insert(3, 1));
        assert!(t.insert(34, 2));
        assert_eq!(t.lookup(3), Some(1));
        assert_eq!(t.lookup(34), Some(2));
        assert_eq!(t.bucket_len(3), 2);
        assert!(t.remove(3));
        assert_eq!(t.lookup(34), Some(2));
    }

    #[test]
    fn len_counts_entries() {
        let t = small_table();
        for k in 0..100 {
            t.insert(k, u64::from(k));
        }
        assert_eq!(t.len(), 100);
        for k in 0..50 {
            t.remove(k);
        }
        assert_eq!(t.len(), 50);
        assert!(!t.is_empty());
    }

    #[test]
    fn paper_bucket_count_is_default() {
        let t = HashTable::new(Stm::default());
        assert_eq!(t.bucket_count(), PAPER_BUCKETS);
    }

    #[test]
    fn matches_reference_model_under_random_ops() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let t = small_table();
        let mut model: BTreeMap<Key, Value> = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..2_000 {
            let key = rng.gen_range(0..200u32);
            match rng.gen_range(0..3) {
                0 => {
                    let value = rng.gen::<u64>();
                    let expected = !model.contains_key(&key);
                    model.insert(key, value);
                    assert_eq!(t.insert(key, value), expected);
                }
                1 => {
                    let expected = model.remove(&key).is_some();
                    assert_eq!(t.remove(key), expected);
                }
                _ => {
                    assert_eq!(t.lookup(key), model.get(&key).copied());
                }
            }
        }
        assert_eq!(t.len(), model.len());
    }

    #[test]
    fn concurrent_disjoint_inserts_all_land() {
        let t = Arc::new(HashTable::with_buckets(Stm::default(), 97));
        let threads = 4u32;
        let per_thread = 500u32;
        thread::scope(|s| {
            for p in 0..threads {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..per_thread {
                        let key = p * per_thread + i;
                        assert!(t.insert(key, u64::from(key)));
                    }
                });
            }
        });
        assert_eq!(t.len(), (threads * per_thread) as usize);
        for key in 0..threads * per_thread {
            assert_eq!(t.lookup(key), Some(u64::from(key)));
        }
    }

    #[test]
    fn concurrent_same_bucket_updates_serialize() {
        // Every key maps to the same bucket in a 1-bucket table, so every
        // operation conflicts; the STM must still produce a consistent result.
        let t = Arc::new(HashTable::with_buckets(Stm::default(), 1));
        let threads = 4u32;
        let per_thread = 200u32;
        thread::scope(|s| {
            for p in 0..threads {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..per_thread {
                        t.insert(p * per_thread + i, 7);
                    }
                });
            }
        });
        assert_eq!(t.len(), (threads * per_thread) as usize);
    }

    #[test]
    fn composed_transactional_ops_are_atomic() {
        // Move an entry from one key to another atomically.
        let stm = Stm::default();
        let t = HashTable::with_buckets(stm.clone(), 31);
        t.insert(1, 10);
        stm.atomically(|tx| {
            let v = t.lookup_tx(tx, 1)?.expect("key 1 present");
            t.remove_tx(tx, 1)?;
            t.insert_tx(tx, 2, v)?;
            Ok(())
        });
        assert_eq!(t.lookup(1), None);
        assert_eq!(t.lookup(2), Some(10));
    }
}
