//! Wire codec for dictionary operations and snapshots.
//!
//! The durability plane logs one record per committed writing transaction
//! and periodically checkpoints the whole dictionary; this module defines
//! the byte layouts for both so the WAL crate can stay generic over
//! `Vec<u8>` payloads.
//!
//! ## Operation records
//!
//! ```text
//! insert:  [0x01][key: u32 LE][value: u64 LE]    (13 bytes)
//! remove:  [0x02][key: u32 LE]                   (5 bytes)
//! ```
//!
//! Lookups are read-only and never logged — [`encode_op`] returns `None`
//! for them, which is the signal the runtime uses to skip the WAL entirely
//! for read-only work.
//!
//! ## Snapshots
//!
//! ```text
//! [version: u8 = 1][count: u32 LE][count × (key: u32 LE, value: u64 LE)]
//! ```
//!
//! Replaying an operation record is idempotent per key (insert and remove
//! are both last-writer-wins on their key), which is what lets recovery
//! apply a fuzzy snapshot and then replay every logged record with a
//! sequence number past the checkpoint position without double-apply
//! hazards. Decoding is strict: trailing bytes, truncated pairs, unknown
//! tags and unknown versions are all errors, because a corrupt record that
//! passed the WAL's CRC would indicate an encoder bug worth failing loudly
//! on.

use crate::dictionary::{DictOp, Dictionary, Key, Value};

/// Tag byte for an insert record.
const TAG_INSERT: u8 = 0x01;
/// Tag byte for a remove record.
const TAG_REMOVE: u8 = 0x02;
/// Snapshot format version written by [`encode_snapshot`].
const SNAPSHOT_VERSION: u8 = 1;

/// Encode a dictionary operation for the WAL. Returns `None` for lookups,
/// which are read-only and must not be logged.
pub fn encode_op(op: &DictOp) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    encode_op_into(op, &mut out).then_some(out)
}

/// Allocation-free variant of [`encode_op`]: append the record to `out`
/// (typically a recycled buffer) and report whether anything was written.
/// Lookups are read-only, write nothing, and return `false`.
pub fn encode_op_into(op: &DictOp, out: &mut Vec<u8>) -> bool {
    match op {
        DictOp::Insert { key, value } => {
            out.reserve(13);
            out.push(TAG_INSERT);
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&value.to_le_bytes());
            true
        }
        DictOp::Remove { key } => {
            out.reserve(5);
            out.push(TAG_REMOVE);
            out.extend_from_slice(&key.to_le_bytes());
            true
        }
        DictOp::Lookup { .. } => false,
    }
}

/// Decode an operation record produced by [`encode_op`].
///
/// Strict: the payload must be exactly one record with no trailing bytes.
pub fn decode_op(bytes: &[u8]) -> Result<DictOp, String> {
    let (&tag, rest) = bytes
        .split_first()
        .ok_or_else(|| "empty operation record".to_string())?;
    match tag {
        TAG_INSERT => {
            if rest.len() != 12 {
                return Err(format!(
                    "insert record has {} payload bytes, want 12",
                    rest.len()
                ));
            }
            let key = Key::from_le_bytes(rest[..4].try_into().expect("length checked"));
            let value = Value::from_le_bytes(rest[4..].try_into().expect("length checked"));
            Ok(DictOp::Insert { key, value })
        }
        TAG_REMOVE => {
            if rest.len() != 4 {
                return Err(format!(
                    "remove record has {} payload bytes, want 4",
                    rest.len()
                ));
            }
            let key = Key::from_le_bytes(rest.try_into().expect("length checked"));
            Ok(DictOp::Remove { key })
        }
        other => Err(format!("unknown operation tag 0x{other:02x}")),
    }
}

/// Encode a full-dictionary snapshot for a checkpoint payload.
pub fn encode_snapshot(entries: &[(Key, Value)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + entries.len() * 12);
    out.push(SNAPSHOT_VERSION);
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for &(key, value) in entries {
        out.extend_from_slice(&key.to_le_bytes());
        out.extend_from_slice(&value.to_le_bytes());
    }
    out
}

/// Decode a snapshot produced by [`encode_snapshot`].
pub fn decode_snapshot(bytes: &[u8]) -> Result<Vec<(Key, Value)>, String> {
    let (&version, rest) = bytes
        .split_first()
        .ok_or_else(|| "empty snapshot".to_string())?;
    if version != SNAPSHOT_VERSION {
        return Err(format!("unknown snapshot version {version}"));
    }
    if rest.len() < 4 {
        return Err("snapshot truncated before entry count".to_string());
    }
    let count = u32::from_le_bytes(rest[..4].try_into().expect("length checked")) as usize;
    let body = &rest[4..];
    if body.len() != count * 12 {
        return Err(format!(
            "snapshot body has {} bytes, want {} for {count} entries",
            body.len(),
            count * 12
        ));
    }
    let mut entries = Vec::with_capacity(count);
    for pair in body.chunks_exact(12) {
        let key = Key::from_le_bytes(pair[..4].try_into().expect("length checked"));
        let value = Value::from_le_bytes(pair[4..].try_into().expect("length checked"));
        entries.push((key, value));
    }
    Ok(entries)
}

/// Apply a decoded operation record to a dictionary during recovery replay.
pub fn apply_op(dict: &dyn Dictionary, op: &DictOp) {
    match op {
        DictOp::Insert { key, value } => {
            dict.insert(*key, *value);
        }
        DictOp::Remove { key } => {
            dict.remove(*key);
        }
        DictOp::Lookup { .. } => {}
    }
}

/// Load a snapshot's entries into a dictionary (checkpoint restore).
pub fn restore_snapshot(dict: &dyn Dictionary, entries: &[(Key, Value)]) {
    for &(key, value) in entries {
        dict.insert(key, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locked::LockedDictionary;

    #[test]
    fn op_round_trip() {
        let ops = [
            DictOp::Insert { key: 0, value: 0 },
            DictOp::Insert {
                key: u32::MAX,
                value: u64::MAX,
            },
            DictOp::Insert {
                key: 0x1234_5678,
                value: 0x9abc_def0_1122_3344,
            },
            DictOp::Remove { key: 0 },
            DictOp::Remove { key: u32::MAX },
        ];
        for op in &ops {
            let bytes = encode_op(op).expect("updates encode");
            assert_eq!(decode_op(&bytes).unwrap(), *op);
        }
    }

    #[test]
    fn lookups_are_not_logged() {
        assert!(encode_op(&DictOp::Lookup { key: 7 }).is_none());
    }

    #[test]
    fn decode_rejects_malformed_records() {
        assert!(decode_op(&[]).is_err(), "empty");
        assert!(decode_op(&[0x03, 0, 0, 0, 0]).is_err(), "unknown tag");
        let mut insert = encode_op(&DictOp::Insert { key: 1, value: 2 }).unwrap();
        insert.pop();
        assert!(decode_op(&insert).is_err(), "truncated insert");
        let mut remove = encode_op(&DictOp::Remove { key: 1 }).unwrap();
        remove.push(0);
        assert!(decode_op(&remove).is_err(), "trailing byte");
    }

    #[test]
    fn snapshot_round_trip() {
        let entries: Vec<(Key, Value)> = (0..100).map(|i| (i * 3, (i as u64) << 20)).collect();
        let bytes = encode_snapshot(&entries);
        assert_eq!(decode_snapshot(&bytes).unwrap(), entries);
        assert_eq!(decode_snapshot(&encode_snapshot(&[])).unwrap(), vec![]);
    }

    #[test]
    fn snapshot_rejects_malformed_input() {
        assert!(decode_snapshot(&[]).is_err(), "empty");
        assert!(decode_snapshot(&[9, 0, 0, 0, 0]).is_err(), "bad version");
        let mut bytes = encode_snapshot(&[(1, 2), (3, 4)]);
        bytes.pop();
        assert!(decode_snapshot(&bytes).is_err(), "truncated body");
        let mut extra = encode_snapshot(&[(1, 2)]);
        extra.push(0);
        assert!(decode_snapshot(&extra).is_err(), "trailing byte");
        assert!(decode_snapshot(&[1, 0, 0]).is_err(), "truncated count");
    }

    #[test]
    fn restore_then_replay_is_last_writer_wins() {
        let dict = LockedDictionary::new();
        restore_snapshot(&dict, &[(1, 10), (2, 20), (3, 30)]);
        // Replay a suffix that overlaps the snapshot: re-inserting key 2 with
        // a newer value and removing key 3 must land on the replayed state.
        for op in [
            DictOp::Insert { key: 2, value: 21 },
            DictOp::Remove { key: 3 },
            DictOp::Insert { key: 4, value: 40 },
        ] {
            apply_op(&dict, &op);
        }
        assert_eq!(dict.entries(), vec![(1, 10), (2, 21), (4, 40)]);
    }
}
