//! Coarse-grained lock baseline dictionary.
//!
//! The paper motivates transactional memory by contrast with lock-based
//! synchronization. This baseline — a single mutex around a `BTreeMap` — is
//! used by the ablation benches to show where the STM structures sit between
//! "one global lock" (no concurrency, no aborts) and fine-grained
//! transactions (concurrency, occasional aborts), and by the tests as a
//! trivially correct reference implementation.

use std::collections::BTreeMap;

use parking_lot::Mutex;

use crate::dictionary::{Dictionary, Key, Value};

/// A `Mutex<BTreeMap>` dictionary.
#[derive(Default)]
pub struct LockedDictionary {
    inner: Mutex<BTreeMap<Key, Value>>,
}

impl LockedDictionary {
    /// Create an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the current contents (for validation).
    pub fn snapshot(&self) -> BTreeMap<Key, Value> {
        self.inner.lock().clone()
    }
}

impl Dictionary for LockedDictionary {
    fn insert(&self, key: Key, value: Value) -> bool {
        self.inner.lock().insert(key, value).is_none()
    }

    fn remove(&self, key: Key) -> bool {
        self.inner.lock().remove(&key).is_some()
    }

    fn lookup(&self, key: Key) -> Option<Value> {
        self.inner.lock().get(&key).copied()
    }

    fn len(&self) -> usize {
        self.inner.lock().len()
    }

    fn entries(&self) -> Vec<(Key, Value)> {
        self.inner.lock().iter().map(|(&k, &v)| (k, v)).collect()
    }

    fn name(&self) -> &'static str {
        "locked-btreemap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn basic_dictionary_behaviour() {
        let d = LockedDictionary::new();
        assert!(d.insert(1, 10));
        assert!(!d.insert(1, 11));
        assert_eq!(d.lookup(1), Some(11));
        assert!(d.remove(1));
        assert!(!d.remove(1));
        assert!(d.is_empty());
        assert_eq!(d.name(), "locked-btreemap");
    }

    #[test]
    fn concurrent_use_is_safe() {
        let d = Arc::new(LockedDictionary::new());
        thread::scope(|s| {
            for t in 0..4u32 {
                let d = Arc::clone(&d);
                s.spawn(move || {
                    for i in 0..500u32 {
                        d.insert(t * 500 + i, 1);
                    }
                });
            }
        });
        assert_eq!(d.len(), 2_000);
        assert_eq!(d.snapshot().len(), 2_000);
    }
}
