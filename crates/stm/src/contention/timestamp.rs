//! The Timestamp (Greedy-style) contention manager.
//!
//! Seniority wins: the transaction with the older start timestamp keeps
//! insisting (with randomized backoff so it does not burn the enemy's CPU),
//! while the younger transaction gives way quickly. Because the older
//! transaction can always finish, this family of policies is livelock-free in
//! the classic setting; here the same ordering argument bounds how long a
//! young transaction can be starved.

use std::time::Duration;

use super::{BackoffPolicy, Conflict, ConflictKind, ContentionManager, Resolution};

/// How many rounds the younger transaction waits before yielding.
const YOUNG_PATIENCE: u32 = 2;
/// Upper bound on the older transaction's insistence, so that a wedged enemy
/// cannot block it forever.
const OLD_PATIENCE: u32 = 32;

/// Timestamp-based contention manager.
#[derive(Debug)]
pub struct Timestamp {
    backoff: BackoffPolicy,
}

impl Timestamp {
    /// Create a Timestamp manager with the given backoff tuning.
    pub fn new(backoff: BackoffPolicy) -> Self {
        Timestamp { backoff }
    }
}

impl ContentionManager for Timestamp {
    fn on_conflict(&mut self, conflict: &Conflict) -> Resolution {
        if conflict.kind == ConflictKind::Validation {
            return Resolution::Abort;
        }
        let i_am_older = conflict.my_start_ts < conflict.enemy_start_ts;
        let patience = if i_am_older {
            OLD_PATIENCE
        } else {
            YOUNG_PATIENCE
        };
        if conflict.attempt <= patience {
            Resolution::Wait(self.backoff.delay(conflict.attempt.saturating_sub(1)))
        } else {
            Resolution::Abort
        }
    }

    fn name(&self) -> &'static str {
        "Timestamp"
    }
}

impl Default for Timestamp {
    fn default() -> Self {
        Timestamp::new(BackoffPolicy::new(
            Duration::from_micros(1),
            Duration::from_millis(1),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conflict(my_ts: u64, enemy_ts: u64, attempt: u32) -> Conflict {
        Conflict {
            kind: ConflictKind::Acquire,
            enemy: 4,
            enemy_priority: 0,
            enemy_start_ts: enemy_ts,
            attempt,
            my_start_ts: my_ts,
        }
    }

    #[test]
    fn younger_transaction_yields_quickly() {
        let mut cm = Timestamp::default();
        let yield_at = (1..=64)
            .find(|&a| cm.on_conflict(&conflict(100, 1, a)) == Resolution::Abort)
            .unwrap();
        assert!(yield_at <= YOUNG_PATIENCE + 1);
    }

    #[test]
    fn older_transaction_insists_longer() {
        let mut young = Timestamp::default();
        let mut old = Timestamp::default();
        let yield_at = |cm: &mut Timestamp, my, enemy| {
            (1..=128)
                .find(|&a| cm.on_conflict(&conflict(my, enemy, a)) == Resolution::Abort)
                .unwrap()
        };
        let young_round = yield_at(&mut young, 100, 1);
        let old_round = yield_at(&mut old, 1, 100);
        assert!(old_round > young_round);
    }

    #[test]
    fn even_the_oldest_eventually_gives_up() {
        let mut cm = Timestamp::default();
        let gave_up = (1..=OLD_PATIENCE + 2)
            .any(|a| cm.on_conflict(&conflict(0, u64::MAX, a)) == Resolution::Abort);
        assert!(gave_up);
    }
}
