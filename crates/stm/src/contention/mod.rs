//! Contention management.
//!
//! When a transaction finds a variable it needs owned by another transaction
//! (or repeatedly fails validation), *somebody* has to give way. In the DSTM
//! lineage this decision is delegated to a pluggable **contention manager**
//! (Scherer & Scott, PODC'05). The KATME paper runs all of its experiments
//! under the **Polka** manager; this module provides Polka plus the rest of
//! the classic suite so the benches can ablate the choice.
//!
//! ### Adaptation to a commit-time-locking STM
//!
//! The original managers may abort the *enemy* transaction, which is possible
//! in an obstruction-free object-based STM. Here, ownership is only held
//! during the short commit section, so the managers decide how long the
//! *current* transaction keeps waiting (with randomized exponential backoff)
//! before restarting itself. The policy knobs the paper's evaluation depends
//! on — priority accumulation, randomized exponential backoff, seniority — are
//! all preserved.

mod aggressive;
mod karma;
mod polite;
mod polka;
mod timestamp;

pub use aggressive::Aggressive;
pub use karma::Karma;
pub use polite::Polite;
pub use polka::Polka;
pub use timestamp::Timestamp;

use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::{CmKind, StmConfig};
use crate::error::AbortCause;

/// Where in the transaction life cycle a conflict was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConflictKind {
    /// A transactional read found the variable owned by a committing enemy.
    Read,
    /// Commit-time acquisition found the variable owned by an enemy.
    Acquire,
    /// Read-set validation failed (the enemy has already committed; waiting
    /// cannot help, but the manager still records the event).
    Validation,
}

impl ConflictKind {
    /// The abort cause corresponding to giving up on this conflict.
    pub fn abort_cause(&self) -> AbortCause {
        match self {
            ConflictKind::Read => AbortCause::ReadOwned,
            ConflictKind::Acquire => AbortCause::CommitAcquire,
            ConflictKind::Validation => AbortCause::CommitValidation,
        }
    }
}

/// Description of a conflict handed to the contention manager.
#[derive(Debug, Clone, Copy)]
pub struct Conflict {
    /// Phase in which the conflict occurred.
    pub kind: ConflictKind,
    /// Identifier of the enemy transaction (0 when unknown).
    pub enemy: u64,
    /// Accumulated priority of the enemy transaction, if it is still live.
    pub enemy_priority: u64,
    /// Start timestamp of the enemy transaction (`u64::MAX` when unknown).
    pub enemy_start_ts: u64,
    /// How many times this same conflict has been presented consecutively
    /// (1 on the first encounter).
    pub attempt: u32,
    /// Start timestamp of the current transaction.
    pub my_start_ts: u64,
}

/// What the contention manager wants the transaction to do about a conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Re-check immediately (busy retry).
    Retry,
    /// Back off for approximately the given duration, then re-check.
    Wait(Duration),
    /// Abort the current attempt and re-run the atomic block from scratch.
    Abort,
}

/// A contention-management policy.
///
/// One manager instance is created per call to [`crate::Stm::atomically`] and
/// lives across all attempts of that logical transaction, which is what lets
/// Karma/Polka retain priority across retries.
pub trait ContentionManager: Send {
    /// A new attempt of the transaction is starting.
    fn on_begin_attempt(&mut self) {}

    /// The transaction successfully opened (read or wrote) a variable.
    /// Managers that accumulate priority do so here.
    fn on_open(&mut self) {}

    /// A conflict was encountered; decide what to do.
    fn on_conflict(&mut self, conflict: &Conflict) -> Resolution;

    /// The transaction committed.
    fn on_commit(&mut self) {}

    /// The current attempt aborted (for any reason).
    fn on_abort(&mut self) {}

    /// Current accumulated priority (published to the registry so enemies
    /// can compare against it).
    fn priority(&self) -> u64 {
        0
    }

    /// Forget all per-transaction state, making the instance equivalent to a
    /// freshly built one. Called when a pooled manager is recycled for a new
    /// logical transaction (see [`checkout`]); policies whose only state is
    /// tuning (and the backoff RNG, whose position carries over harmlessly)
    /// need not override it.
    fn reset(&mut self) {}

    /// Policy name for reports.
    fn name(&self) -> &'static str;
}

/// Instantiate the configured contention manager.
pub fn build(config: &StmConfig) -> Box<dyn ContentionManager> {
    build_kind(config.contention_manager, config)
}

/// Instantiate a specific contention-manager kind with the given tuning.
pub fn build_kind(kind: CmKind, config: &StmConfig) -> Box<dyn ContentionManager> {
    let backoff = BackoffPolicy::from_config(config);
    match kind {
        CmKind::Polka => Box::new(Polka::new(backoff)),
        CmKind::Karma => Box::new(Karma::new(backoff)),
        CmKind::Polite => Box::new(Polite::new(backoff)),
        CmKind::Aggressive => Box::new(Aggressive::new()),
        CmKind::Timestamp => Box::new(Timestamp::new(backoff)),
    }
}

thread_local! {
    /// One parked manager per thread: the retry loop in [`crate::Stm`] runs
    /// one logical transaction at a time per thread, so a single slot
    /// suffices to make steady-state checkouts allocation-free (building a
    /// manager also seeds its backoff RNG from the OS — far costlier than
    /// the box itself).
    static CM_POOL: std::cell::Cell<Option<(CmKind, Box<dyn ContentionManager>)>> =
        const { std::cell::Cell::new(None) };
}

/// A contention manager checked out of the thread-local pool; derefs to
/// [`ContentionManager`] and returns the instance on drop.
pub struct PooledCm {
    kind: CmKind,
    boxed: Option<Box<dyn ContentionManager>>,
}

impl std::ops::Deref for PooledCm {
    type Target = dyn ContentionManager;
    fn deref(&self) -> &Self::Target {
        self.boxed.as_deref().expect("present until drop")
    }
}

impl std::ops::DerefMut for PooledCm {
    fn deref_mut(&mut self) -> &mut Self::Target {
        self.boxed.as_deref_mut().expect("present until drop")
    }
}

impl Drop for PooledCm {
    fn drop(&mut self) {
        if let Some(boxed) = self.boxed.take() {
            CM_POOL.with(|slot| slot.set(Some((self.kind, boxed))));
        }
    }
}

/// Check the configured contention manager out of the thread-local pool,
/// building (and later pooling) one only when the thread has none of the
/// right kind — e.g. on first use, or when differently configured `Stm`
/// handles interleave on one thread.
pub fn checkout(config: &StmConfig) -> PooledCm {
    let kind = config.contention_manager;
    let boxed = match CM_POOL.with(|slot| slot.take()) {
        Some((pooled_kind, mut boxed)) if pooled_kind == kind => {
            boxed.reset();
            boxed
        }
        _ => build(config),
    };
    PooledCm {
        kind,
        boxed: Some(boxed),
    }
}

/// Shared randomized-exponential-backoff helper used by the policies.
#[derive(Debug, Clone)]
pub struct BackoffPolicy {
    base: Duration,
    cap: Duration,
    rng: SmallRng,
}

impl BackoffPolicy {
    /// Build from STM configuration.
    pub fn from_config(config: &StmConfig) -> Self {
        BackoffPolicy::new(config.backoff_base, config.backoff_cap)
    }

    /// Build with explicit base and cap.
    pub fn new(base: Duration, cap: Duration) -> Self {
        BackoffPolicy {
            base,
            cap,
            rng: SmallRng::from_entropy(),
        }
    }

    /// Randomized exponential delay for the given (0-based) round:
    /// uniform in `[0, min(cap, base * 2^round)]`.
    pub fn delay(&mut self, round: u32) -> Duration {
        let exp = 1u64.checked_shl(round.min(20)).unwrap_or(u64::MAX);
        let max_nanos = (self.base.as_nanos() as u64)
            .saturating_mul(exp)
            .min(self.cap.as_nanos() as u64)
            .max(1);
        Duration::from_nanos(self.rng.gen_range(0..=max_nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conflict(attempt: u32) -> Conflict {
        Conflict {
            kind: ConflictKind::Acquire,
            enemy: 42,
            enemy_priority: 0,
            enemy_start_ts: 5,
            attempt,
            my_start_ts: 10,
        }
    }

    #[test]
    fn conflict_kind_maps_to_abort_cause() {
        assert_eq!(ConflictKind::Read.abort_cause(), AbortCause::ReadOwned);
        assert_eq!(
            ConflictKind::Acquire.abort_cause(),
            AbortCause::CommitAcquire
        );
        assert_eq!(
            ConflictKind::Validation.abort_cause(),
            AbortCause::CommitValidation
        );
    }

    #[test]
    fn backoff_delay_respects_cap() {
        let mut b = BackoffPolicy::new(Duration::from_micros(1), Duration::from_micros(50));
        for round in 0..30 {
            let d = b.delay(round);
            assert!(d <= Duration::from_micros(50), "round {round} delay {d:?}");
        }
    }

    #[test]
    fn backoff_delay_grows_in_expectation() {
        let mut b = BackoffPolicy::new(Duration::from_micros(1), Duration::from_millis(10));
        let avg = |b: &mut BackoffPolicy, round| -> f64 {
            (0..200)
                .map(|_| b.delay(round).as_nanos() as f64)
                .sum::<f64>()
                / 200.0
        };
        let early = avg(&mut b, 0);
        let late = avg(&mut b, 10);
        assert!(
            late > early * 4.0,
            "expected later rounds to back off longer: early={early} late={late}"
        );
    }

    #[test]
    fn factory_builds_every_kind() {
        let cfg = StmConfig::default();
        for kind in CmKind::ALL {
            let cm = build_kind(kind, &cfg);
            assert_eq!(cm.name(), kind.name());
        }
    }

    #[test]
    fn every_manager_eventually_aborts_or_waits_boundedly() {
        // Sanity check: drive each manager with a persistent conflict and make
        // sure it never returns an unbounded stream of `Retry` (which would
        // spin forever without backoff).
        let cfg = StmConfig::default();
        for kind in CmKind::ALL {
            let mut cm = build_kind(kind, &cfg);
            cm.on_begin_attempt();
            let mut saw_non_retry = false;
            for attempt in 1..=64 {
                match cm.on_conflict(&conflict(attempt)) {
                    Resolution::Retry => {}
                    Resolution::Wait(_) | Resolution::Abort => {
                        saw_non_retry = true;
                        break;
                    }
                }
            }
            assert!(
                saw_non_retry,
                "{} spun 64 times without yielding",
                cm.name()
            );
        }
    }
}
