//! The Karma contention manager.
//!
//! Karma tracks the amount of work a transaction has invested (one unit per
//! opened object) and lets that investment persist across aborts, so a
//! transaction that repeatedly loses gains seniority. On a conflict it keeps
//! retrying/waiting until the number of attempts exceeds its priority deficit
//! against the enemy, then gives way. Unlike Polka the per-round wait is a
//! fixed short delay rather than an exponentially growing one.

use std::time::Duration;

use super::{BackoffPolicy, Conflict, ConflictKind, ContentionManager, Resolution};

/// Karma contention manager.
#[derive(Debug)]
pub struct Karma {
    backoff: BackoffPolicy,
    priority: u64,
}

impl Karma {
    /// Create a Karma manager with the given backoff tuning.
    pub fn new(backoff: BackoffPolicy) -> Self {
        Karma {
            backoff,
            priority: 0,
        }
    }
}

impl ContentionManager for Karma {
    fn on_open(&mut self) {
        self.priority += 1;
    }

    fn on_conflict(&mut self, conflict: &Conflict) -> Resolution {
        if conflict.kind == ConflictKind::Validation {
            return Resolution::Abort;
        }
        let deficit = conflict.enemy_priority.saturating_sub(self.priority);
        let budget = (deficit.min(64) as u32).max(1);
        if conflict.attempt <= budget {
            // Fixed-magnitude wait (round 0 of the backoff schedule).
            Resolution::Wait(self.backoff.delay(0))
        } else {
            Resolution::Abort
        }
    }

    fn on_commit(&mut self) {
        self.priority = 0;
    }

    fn on_abort(&mut self) {
        // Karma's defining property: priority survives aborts.
    }

    fn priority(&self) -> u64 {
        self.priority
    }

    fn reset(&mut self) {
        self.priority = 0;
    }

    fn name(&self) -> &'static str {
        "Karma"
    }
}

impl Default for Karma {
    fn default() -> Self {
        Karma::new(BackoffPolicy::new(
            Duration::from_micros(2),
            Duration::from_millis(1),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conflict(enemy_priority: u64, attempt: u32) -> Conflict {
        Conflict {
            kind: ConflictKind::Acquire,
            enemy: 3,
            enemy_priority,
            enemy_start_ts: 0,
            attempt,
            my_start_ts: 1,
        }
    }

    #[test]
    fn priority_survives_abort() {
        let mut cm = Karma::default();
        cm.on_open();
        cm.on_open();
        cm.on_abort();
        assert_eq!(cm.priority(), 2);
        cm.on_commit();
        assert_eq!(cm.priority(), 0);
    }

    #[test]
    fn waits_proportional_to_deficit() {
        let mut cm = Karma::default();
        // Deficit of 5 → should tolerate at least 5 attempts before aborting.
        for attempt in 1..=5 {
            assert!(matches!(
                cm.on_conflict(&conflict(5, attempt)),
                Resolution::Wait(_)
            ));
        }
        assert_eq!(cm.on_conflict(&conflict(5, 6)), Resolution::Abort);
    }

    #[test]
    fn zero_deficit_still_waits_once() {
        let mut cm = Karma::default();
        cm.on_open(); // priority 1 > enemy 0
        assert!(matches!(
            cm.on_conflict(&conflict(0, 1)),
            Resolution::Wait(_)
        ));
        assert_eq!(cm.on_conflict(&conflict(0, 2)), Resolution::Abort);
    }

    #[test]
    fn validation_aborts_immediately() {
        let mut cm = Karma::default();
        let c = Conflict {
            kind: ConflictKind::Validation,
            ..conflict(0, 1)
        };
        assert_eq!(cm.on_conflict(&c), Resolution::Abort);
    }
}
