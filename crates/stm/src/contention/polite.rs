//! The Polite contention manager.
//!
//! Polite backs off for a bounded number of rounds with randomized
//! exponentially increasing delays, then stops being polite. In the original
//! obstruction-free DSTM "stops being polite" means aborting the enemy; here
//! it means restarting the current attempt (the enemy is mid-commit and will
//! finish momentarily).

use std::time::Duration;

use super::{BackoffPolicy, Conflict, ConflictKind, ContentionManager, Resolution};

/// Number of backoff rounds before giving way (matches the DSTM default of
/// 2^22 ns total budget order-of-magnitude when combined with the default
/// backoff cap).
const DEFAULT_ROUNDS: u32 = 8;

/// Polite contention manager.
#[derive(Debug)]
pub struct Polite {
    backoff: BackoffPolicy,
    rounds: u32,
}

impl Polite {
    /// Create a Polite manager with the given backoff tuning and the default
    /// number of rounds.
    pub fn new(backoff: BackoffPolicy) -> Self {
        Polite {
            backoff,
            rounds: DEFAULT_ROUNDS,
        }
    }

    /// Override the number of backoff rounds.
    pub fn with_rounds(mut self, rounds: u32) -> Self {
        self.rounds = rounds.max(1);
        self
    }
}

impl ContentionManager for Polite {
    fn on_conflict(&mut self, conflict: &Conflict) -> Resolution {
        if conflict.kind == ConflictKind::Validation {
            return Resolution::Abort;
        }
        if conflict.attempt <= self.rounds {
            Resolution::Wait(self.backoff.delay(conflict.attempt - 1))
        } else {
            Resolution::Abort
        }
    }

    fn name(&self) -> &'static str {
        "Polite"
    }
}

impl Default for Polite {
    fn default() -> Self {
        Polite::new(BackoffPolicy::new(
            Duration::from_micros(1),
            Duration::from_millis(1),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conflict(attempt: u32) -> Conflict {
        Conflict {
            kind: ConflictKind::Read,
            enemy: 1,
            enemy_priority: 0,
            enemy_start_ts: 0,
            attempt,
            my_start_ts: 0,
        }
    }

    #[test]
    fn waits_then_aborts() {
        let mut cm = Polite::default();
        for attempt in 1..=DEFAULT_ROUNDS {
            assert!(matches!(
                cm.on_conflict(&conflict(attempt)),
                Resolution::Wait(_)
            ));
        }
        assert_eq!(
            cm.on_conflict(&conflict(DEFAULT_ROUNDS + 1)),
            Resolution::Abort
        );
    }

    #[test]
    fn rounds_are_configurable() {
        let mut cm = Polite::default().with_rounds(2);
        assert!(matches!(cm.on_conflict(&conflict(1)), Resolution::Wait(_)));
        assert!(matches!(cm.on_conflict(&conflict(2)), Resolution::Wait(_)));
        assert_eq!(cm.on_conflict(&conflict(3)), Resolution::Abort);
    }

    #[test]
    fn priority_is_always_zero() {
        let mut cm = Polite::default();
        cm.on_open();
        assert_eq!(cm.priority(), 0);
    }
}
