//! The Aggressive contention manager.
//!
//! The original Aggressive policy always resolves a conflict in favour of the
//! transaction that detects it, by immediately aborting the enemy. With
//! commit-time locking the detecting transaction cannot abort a committer, so
//! the adapted policy never waits: it restarts the current attempt
//! immediately, betting that the enemy's commit will have finished by the
//! time it comes back around. This preserves the defining characteristic —
//! zero patience — which is what the ablation benches compare against.

use super::{Conflict, ContentionManager, Resolution};

/// Aggressive (zero-patience) contention manager.
#[derive(Debug, Default)]
pub struct Aggressive {
    conflicts_seen: u64,
}

impl Aggressive {
    /// Create a new Aggressive manager.
    pub fn new() -> Self {
        Aggressive::default()
    }

    /// Number of conflicts this transaction has encountered (diagnostics).
    pub fn conflicts_seen(&self) -> u64 {
        self.conflicts_seen
    }
}

impl ContentionManager for Aggressive {
    fn on_conflict(&mut self, _conflict: &Conflict) -> Resolution {
        self.conflicts_seen += 1;
        Resolution::Abort
    }

    fn reset(&mut self) {
        self.conflicts_seen = 0;
    }

    fn name(&self) -> &'static str {
        "Aggressive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contention::ConflictKind;

    #[test]
    fn always_aborts() {
        let mut cm = Aggressive::new();
        for kind in [
            ConflictKind::Read,
            ConflictKind::Acquire,
            ConflictKind::Validation,
        ] {
            let c = Conflict {
                kind,
                enemy: 9,
                enemy_priority: 1_000_000,
                enemy_start_ts: 0,
                attempt: 1,
                my_start_ts: 0,
            };
            assert_eq!(cm.on_conflict(&c), Resolution::Abort);
        }
        assert_eq!(cm.conflicts_seen(), 3);
    }
}
