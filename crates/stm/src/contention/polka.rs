//! The Polka contention manager (Scherer & Scott, PODC'05).
//!
//! Polka = Polite + Karma: it combines **randomized exponential backoff**
//! (from Polite) with **priority accumulation** (from Karma). A transaction
//! gains one unit of priority for every object it successfully opens; when it
//! meets a conflict it backs off for a number of rounds equal to the gap
//! between the enemy's priority and its own, with each round's delay drawn
//! from an exponentially growing randomized interval. Once the budget is
//! exhausted the original Polka aborts the enemy; in this commit-time-locking
//! STM the losing transaction restarts itself instead (see module docs of
//! [`crate::contention`]).
//!
//! This is the manager the KATME paper uses for every experiment.

use std::time::Duration;

use super::{BackoffPolicy, Conflict, ConflictKind, ContentionManager, Resolution};

/// Extra insistence rounds granted when we out-rank the enemy. Bounded so a
/// dead enemy (e.g. a descheduled thread) cannot wedge us forever.
const MAX_INSIST_ROUNDS: u32 = 8;

/// Polka contention manager.
#[derive(Debug)]
pub struct Polka {
    backoff: BackoffPolicy,
    /// Work invested in the current transaction (objects opened). Unlike
    /// Karma, Polka resets priority after a successful commit but *retains*
    /// it across aborts of the same logical transaction.
    priority: u64,
}

impl Polka {
    /// Create a Polka manager with the given backoff tuning.
    pub fn new(backoff: BackoffPolicy) -> Self {
        Polka {
            backoff,
            priority: 0,
        }
    }

    fn budget_against(&self, enemy_priority: u64) -> u32 {
        // When the enemy has invested more work than we have, defer to it for
        // a number of rounds proportional to the deficit (bounded so a wedged
        // enemy cannot stall us forever). When we out-rank the enemy we are
        // the transaction the system has invested in, so we insist for the
        // maximum deferral budget plus a few extra rounds — in the original
        // obstruction-free Polka we would simply abort the enemy here.
        const MAX_DEFER_ROUNDS: u32 = 24;
        if self.priority > enemy_priority {
            MAX_DEFER_ROUNDS + MAX_INSIST_ROUNDS
        } else {
            let deficit = enemy_priority - self.priority;
            (deficit.min(u64::from(MAX_DEFER_ROUNDS)) as u32).max(1)
        }
    }
}

impl ContentionManager for Polka {
    fn on_open(&mut self) {
        self.priority += 1;
    }

    fn on_conflict(&mut self, conflict: &Conflict) -> Resolution {
        if conflict.kind == ConflictKind::Validation {
            // The enemy already committed; waiting cannot make our snapshot
            // valid again.
            return Resolution::Abort;
        }
        let budget = self.budget_against(conflict.enemy_priority);
        if conflict.attempt <= budget {
            Resolution::Wait(self.backoff.delay(conflict.attempt - 1))
        } else {
            Resolution::Abort
        }
    }

    fn on_commit(&mut self) {
        self.priority = 0;
    }

    fn on_abort(&mut self) {
        // Priority is retained so that a transaction that keeps losing
        // accumulates seniority and eventually wins (Polka's key fairness
        // property).
    }

    fn priority(&self) -> u64 {
        self.priority
    }

    fn reset(&mut self) {
        self.priority = 0;
    }

    fn name(&self) -> &'static str {
        "Polka"
    }
}

impl Default for Polka {
    fn default() -> Self {
        Polka::new(BackoffPolicy::new(
            Duration::from_micros(2),
            Duration::from_millis(2),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conflict(kind: ConflictKind, enemy_priority: u64, attempt: u32) -> Conflict {
        Conflict {
            kind,
            enemy: 7,
            enemy_priority,
            enemy_start_ts: 1,
            attempt,
            my_start_ts: 2,
        }
    }

    #[test]
    fn accumulates_priority_on_open() {
        let mut cm = Polka::default();
        assert_eq!(cm.priority(), 0);
        for _ in 0..5 {
            cm.on_open();
        }
        assert_eq!(cm.priority(), 5);
    }

    #[test]
    fn priority_resets_on_commit_but_not_abort() {
        let mut cm = Polka::default();
        cm.on_open();
        cm.on_open();
        cm.on_abort();
        assert_eq!(cm.priority(), 2, "priority retained across aborts");
        cm.on_commit();
        assert_eq!(cm.priority(), 0, "priority reset after commit");
    }

    #[test]
    fn validation_conflicts_abort_immediately() {
        let mut cm = Polka::default();
        assert_eq!(
            cm.on_conflict(&conflict(ConflictKind::Validation, 100, 1)),
            Resolution::Abort
        );
    }

    #[test]
    fn low_priority_transaction_eventually_yields() {
        let mut cm = Polka::default();
        // Enemy has invested a lot; we wait up to the bounded budget, then
        // abort ourselves.
        let mut aborted_at = None;
        for attempt in 1..=64 {
            match cm.on_conflict(&conflict(ConflictKind::Acquire, 1_000, attempt)) {
                Resolution::Wait(_) | Resolution::Retry => {}
                Resolution::Abort => {
                    aborted_at = Some(attempt);
                    break;
                }
            }
        }
        let at = aborted_at.expect("must eventually abort");
        assert!(at > 1, "should wait at least one round first");
        assert!(at <= 33, "budget must be bounded, aborted at {at}");
    }

    #[test]
    fn high_priority_transaction_insists_longer() {
        let mut low = Polka::default();
        let mut high = Polka::default();
        for _ in 0..100 {
            high.on_open();
        }
        let yield_round = |cm: &mut Polka| -> u32 {
            for attempt in 1..=64 {
                if cm.on_conflict(&conflict(ConflictKind::Acquire, 10, attempt))
                    == Resolution::Abort
                {
                    return attempt;
                }
            }
            64
        };
        let low_round = yield_round(&mut low);
        let high_round = yield_round(&mut high);
        assert!(
            high_round > low_round,
            "high-priority ({high_round}) should insist longer than low-priority ({low_round})"
        );
    }

    #[test]
    fn waits_use_backoff_not_busy_retry() {
        let mut cm = Polka::default();
        match cm.on_conflict(&conflict(ConflictKind::Read, 5, 1)) {
            Resolution::Wait(d) => assert!(d <= Duration::from_millis(2)),
            other => panic!("expected Wait, got {other:?}"),
        }
    }
}
