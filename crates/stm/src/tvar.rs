//! Transactional variables.
//!
//! A [`TVar<T>`] is the unit of conflict detection: two transactions conflict
//! exactly when they access the same `TVar` and at least one of them writes
//! it (Bernstein's condition, as the paper frames it). Data structures built
//! on the STM therefore choose their conflict granularity by choosing what
//! they put in a `TVar` — e.g. one `TVar` per hash bucket or per tree node.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::clock;

/// Identifier of a transactional variable.
///
/// Identifiers are unique for the lifetime of the process and define the
/// canonical acquisition order used by the commit protocol.
pub type TVarId = u64;

/// Sentinel owner value meaning "not owned by any transaction".
pub const NO_OWNER: u64 = 0;

/// Shared core of a transactional variable.
pub(crate) struct TVarCore<T: ?Sized> {
    /// Unique, process-wide identifier (canonical lock order).
    id: TVarId,
    /// Version stamp of the most recently committed value.
    version: AtomicU64,
    /// Transaction currently committing this variable, or [`NO_OWNER`].
    owner: AtomicU64,
    /// Hook receiving each displaced value snapshot on publish (see
    /// [`TVar::with_recycler`]); `None` means displaced snapshots are simply
    /// dropped.
    recycle: Option<Box<dyn Fn(Arc<T>) + Send + Sync>>,
    /// The committed value. Readers take consistent snapshots by checking the
    /// version stamp around the read; writers replace the whole `Arc`.
    value: RwLock<Arc<T>>,
}

/// A transactional variable holding a value of type `T`.
///
/// Cloning a `TVar` is cheap and yields another handle to the *same*
/// variable (the same conflict-detection unit), not a copy of the value.
///
/// Values are stored as immutable [`Arc<T>`] snapshots; a transactional write
/// installs a new snapshot at commit, so `T` itself never needs interior
/// mutability and non-transactional readers can never observe a torn value.
pub struct TVar<T> {
    core: Arc<TVarCore<T>>,
}

impl<T> Clone for TVar<T> {
    fn clone(&self) -> Self {
        TVar {
            core: Arc::clone(&self.core),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for TVar<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TVar")
            .field("id", &self.core.id)
            .field("version", &self.core.version.load(Ordering::Relaxed))
            .field("value", &*self.core.value.read())
            .finish()
    }
}

impl<T> TVar<T> {
    /// Create a new transactional variable holding `value`.
    pub fn new(value: T) -> Self {
        Self::from_arc(Arc::new(value))
    }

    /// Create a new transactional variable from an existing `Arc` snapshot.
    pub fn from_arc(value: Arc<T>) -> Self {
        TVar {
            core: Arc::new(TVarCore {
                id: clock::next_tvar_id(),
                version: AtomicU64::new(0),
                owner: AtomicU64::new(NO_OWNER),
                recycle: None,
                value: RwLock::new(value),
            }),
        }
    }

    /// Create a transactional variable whose displaced snapshots are handed
    /// to `recycle` instead of being dropped on the commit path.
    ///
    /// Every commit of a clone-on-write structure retires one snapshot; a
    /// recycler that reclaims the backing buffer when it holds the last
    /// reference (via [`Arc::into_inner`]) turns that retirement into pool
    /// refill instead of allocator traffic. The hook runs on the committing
    /// thread after the new value is visible, while per-variable ownership is
    /// still held — it must be cheap and must not touch the STM.
    pub fn with_recycler(value: T, recycle: impl Fn(Arc<T>) + Send + Sync + 'static) -> Self
    where
        T: Send + Sync,
    {
        TVar {
            core: Arc::new(TVarCore {
                id: clock::next_tvar_id(),
                version: AtomicU64::new(0),
                owner: AtomicU64::new(NO_OWNER),
                recycle: Some(Box::new(recycle)),
                value: RwLock::new(Arc::new(value)),
            }),
        }
    }

    /// The unique identifier of this variable.
    #[inline]
    pub fn id(&self) -> TVarId {
        self.core.id
    }

    /// The version stamp of the currently committed value.
    #[inline]
    pub fn version(&self) -> u64 {
        self.core.version.load(Ordering::Acquire)
    }

    /// Read the committed value outside of any transaction.
    ///
    /// The returned snapshot is consistent (it is a committed value), but no
    /// relationship with other variables is guaranteed; use
    /// [`crate::Stm::atomically`] when multiple variables must be observed
    /// together.
    pub fn load(&self) -> Arc<T> {
        loop {
            if let Some((value, _)) = self.core.consistent_snapshot() {
                return value;
            }
            std::hint::spin_loop();
        }
    }

    /// Replace the committed value outside of any transaction, returning the
    /// displaced snapshot.
    ///
    /// This bypasses the commit protocol entirely: no ownership is taken, no
    /// conflict is detected, the version stamp does not move, and the
    /// recycler hook does not run. It is only sound when the caller is the
    /// sole user of the variable — the intended use is a linked structure
    /// severing its links in `Drop`, where freeing a long `Arc` chain
    /// recursively would overflow the stack and the structure instead
    /// detaches each node's tail before the node itself drops.
    pub fn replace_now(&self, value: T) -> Arc<T> {
        let mut slot = self.core.value.write();
        std::mem::replace(&mut *slot, Arc::new(value))
    }

    pub(crate) fn core(&self) -> &Arc<TVarCore<T>> {
        &self.core
    }
}

impl<T: Default> Default for TVar<T> {
    fn default() -> Self {
        TVar::new(T::default())
    }
}

impl<T> TVarCore<T> {
    #[inline]
    #[allow(dead_code)]
    pub(crate) fn id(&self) -> TVarId {
        self.id
    }

    /// Attempt a consistent (version-stable, unowned) snapshot of the value.
    ///
    /// Returns `None` when the variable is currently owned by a committing
    /// transaction or its version changed mid-read; callers retry or consult
    /// the contention manager.
    pub(crate) fn consistent_snapshot(&self) -> Option<(Arc<T>, u64)> {
        let v1 = self.version.load(Ordering::Acquire);
        let owner1 = self.owner.load(Ordering::Acquire);
        if owner1 != NO_OWNER {
            return None;
        }
        let value = self.value.read().clone();
        let v2 = self.version.load(Ordering::Acquire);
        let owner2 = self.owner.load(Ordering::Acquire);
        if v1 == v2 && owner2 == NO_OWNER {
            Some((value, v1))
        } else {
            None
        }
    }

    /// Current owner (a transaction id) or [`NO_OWNER`].
    #[inline]
    pub(crate) fn owner(&self) -> u64 {
        self.owner.load(Ordering::Acquire)
    }

    #[inline]
    pub(crate) fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Try to acquire commit-time ownership for transaction `txn`.
    pub(crate) fn try_acquire(&self, txn: u64) -> bool {
        debug_assert_ne!(txn, NO_OWNER);
        self.owner
            .compare_exchange(NO_OWNER, txn, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
            || self.owner.load(Ordering::Acquire) == txn
    }

    /// Release commit-time ownership held by transaction `txn`.
    pub(crate) fn release(&self, txn: u64) {
        let _ = self
            .owner
            .compare_exchange(txn, NO_OWNER, Ordering::AcqRel, Ordering::Acquire);
    }

    /// Publish a new value with the given commit timestamp. The caller must
    /// hold ownership.
    pub(crate) fn publish(&self, value: Arc<T>, commit_ts: u64) {
        let displaced = {
            let mut slot = self.value.write();
            std::mem::replace(&mut *slot, value)
        };
        self.version.store(commit_ts, Ordering::Release);
        // The displaced snapshot is handed over (or dropped) outside the
        // value lock, so a slow recycler never blocks readers.
        match &self.recycle {
            Some(recycle) => recycle(displaced),
            None => drop(displaced),
        }
    }
}

/// Type-erased view of a transactional variable used by read/write sets.
pub(crate) trait TVarDyn: Send + Sync {
    /// Unique identifier (canonical ordering key).
    #[allow(dead_code)]
    fn dyn_id(&self) -> TVarId;
    /// Current committed version stamp.
    fn dyn_version(&self) -> u64;
    /// Current owner transaction id or [`NO_OWNER`].
    fn dyn_owner(&self) -> u64;
    /// Attempt to acquire commit-time ownership for `txn`.
    fn dyn_try_acquire(&self, txn: u64) -> bool;
    /// Release commit-time ownership held by `txn`.
    fn dyn_release(&self, txn: u64);
}

impl<T: Send + Sync + 'static> TVarDyn for TVarCore<T> {
    fn dyn_id(&self) -> TVarId {
        self.id
    }
    fn dyn_version(&self) -> u64 {
        self.version()
    }
    fn dyn_owner(&self) -> u64 {
        self.owner()
    }
    fn dyn_try_acquire(&self, txn: u64) -> bool {
        self.try_acquire(txn)
    }
    fn dyn_release(&self, txn: u64) {
        self.release(txn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_tvar_has_version_zero_and_value() {
        let v = TVar::new(7u32);
        assert_eq!(v.version(), 0);
        assert_eq!(*v.load(), 7);
    }

    #[test]
    fn clone_shares_identity() {
        let a = TVar::new(1u32);
        let b = a.clone();
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn distinct_tvars_have_distinct_ids() {
        let a = TVar::new(1u32);
        let b = TVar::new(1u32);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn acquire_release_cycle() {
        let v = TVar::new(0u8);
        let core = v.core();
        assert!(core.try_acquire(17));
        // Re-entrant acquire by the same transaction succeeds.
        assert!(core.try_acquire(17));
        // A different transaction cannot acquire.
        assert!(!core.try_acquire(18));
        core.release(17);
        assert!(core.try_acquire(18));
        core.release(18);
        assert_eq!(core.owner(), NO_OWNER);
    }

    #[test]
    fn release_by_non_owner_is_a_no_op() {
        let v = TVar::new(0u8);
        let core = v.core();
        assert!(core.try_acquire(5));
        core.release(99);
        assert_eq!(core.owner(), 5);
        core.release(5);
    }

    #[test]
    fn publish_updates_value_and_version() {
        let v = TVar::new(String::from("old"));
        let core = v.core();
        assert!(core.try_acquire(3));
        core.publish(Arc::new(String::from("new")), 42);
        core.release(3);
        assert_eq!(*v.load(), "new");
        assert_eq!(v.version(), 42);
    }

    #[test]
    fn snapshot_fails_while_owned() {
        let v = TVar::new(0u64);
        let core = v.core();
        assert!(core.try_acquire(9));
        assert!(core.consistent_snapshot().is_none());
        core.release(9);
        assert!(core.consistent_snapshot().is_some());
    }

    #[test]
    fn recycler_receives_displaced_snapshots() {
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let v = TVar::with_recycler(1u32, move |old: Arc<u32>| {
            sink.lock().unwrap().push(*old);
        });
        let core = v.core();
        assert!(core.try_acquire(4));
        core.publish(Arc::new(2), 9);
        core.release(4);
        assert_eq!(*v.load(), 2);
        assert_eq!(v.version(), 9);
        assert_eq!(*seen.lock().unwrap(), vec![1]);
    }

    #[test]
    fn replace_now_swaps_value_and_returns_displaced() {
        let v = TVar::new(1u32);
        let displaced = v.replace_now(2);
        assert_eq!(*displaced, 1);
        assert_eq!(*v.load(), 2);
        assert_eq!(v.version(), 0, "replace_now bypasses the commit protocol");
    }

    #[test]
    fn default_uses_default_value() {
        let v: TVar<Vec<u32>> = TVar::default();
        assert!(v.load().is_empty());
    }

    #[test]
    fn debug_formatting_mentions_value() {
        let v = TVar::new(123u32);
        let s = format!("{v:?}");
        assert!(s.contains("123"));
    }
}
