//! The STM runtime: the retry loop around transaction attempts.

use std::sync::Arc;

use crate::clock;
use crate::config::StmConfig;
use crate::contention;
use crate::error::TxError;
use crate::registry;
use crate::stats::{StmStats, StmStatsSnapshot, TxnReport};
use crate::tvar::TVar;
use crate::txn::Transaction;

/// A software-transactional-memory runtime.
///
/// An `Stm` owns the configuration (contention-management policy, backoff
/// tuning) and the statistics counters; the transactional variables
/// themselves ([`TVar`]) are independent and may be shared between `Stm`
/// instances because versions come from a process-wide clock.
///
/// Cloning an `Stm` is cheap and shares the statistics counters, which is how
/// the executor hands one logical runtime to many worker threads.
#[derive(Clone)]
pub struct Stm {
    config: StmConfig,
    stats: Arc<StmStats>,
}

impl Default for Stm {
    fn default() -> Self {
        Stm::new(StmConfig::default())
    }
}

impl Stm {
    /// Create a runtime with the given configuration.
    pub fn new(config: StmConfig) -> Self {
        let stats = StmStats::with_stripes(config.stats_stripes);
        Stm { config, stats }
    }

    /// Convenience constructor selecting only the contention manager.
    pub fn with_contention_manager(kind: crate::config::CmKind) -> Self {
        Stm::new(StmConfig::default().with_contention_manager(kind))
    }

    /// The runtime configuration.
    pub fn config(&self) -> &StmConfig {
        &self.config
    }

    /// Shared handle to the statistics counters.
    pub fn stats(&self) -> Arc<StmStats> {
        Arc::clone(&self.stats)
    }

    pub(crate) fn stats_ref(&self) -> &StmStats {
        &self.stats
    }

    /// Point-in-time snapshot of the statistics counters.
    pub fn snapshot(&self) -> StmStatsSnapshot {
        self.stats.snapshot()
    }

    /// Run `body` atomically, retrying on conflicts until it commits, and
    /// return its result.
    ///
    /// The closure receives a [`Transaction`] and should propagate
    /// [`TxError`]s with `?`; returning `Ok` requests a commit.
    pub fn atomically<R, F>(&self, body: F) -> R
    where
        F: FnMut(&mut Transaction<'_>) -> Result<R, TxError>,
    {
        let (value, _report) = self.atomically_reporting(body);
        value
    }

    /// Like [`Stm::atomically`], additionally returning a [`TxnReport`] with
    /// the number of attempts and the footprint of the committed attempt.
    pub fn atomically_reporting<R, F>(&self, body: F) -> (R, TxnReport)
    where
        F: FnMut(&mut Transaction<'_>) -> Result<R, TxError>,
    {
        match self.run_transaction(body, None) {
            Ok(result) => result,
            Err(_) => unreachable!("unbounded atomically cannot exhaust attempts"),
        }
    }

    /// Like [`Stm::atomically_reporting`] but bounded by
    /// [`StmConfig::max_attempts`]; returns an error instead of retrying
    /// forever.
    pub fn try_atomically<R, F>(&self, body: F) -> Result<(R, TxnReport), TxError>
    where
        F: FnMut(&mut Transaction<'_>) -> Result<R, TxError>,
    {
        self.run_transaction(body, self.config.max_attempts)
    }

    /// Read a single variable outside of any transaction and clone the value.
    pub fn read_now<T: Clone>(&self, var: &TVar<T>) -> T {
        (*var.load()).clone()
    }

    fn run_transaction<R, F>(
        &self,
        mut body: F,
        max_attempts: Option<u64>,
    ) -> Result<(R, TxnReport), TxError>
    where
        F: FnMut(&mut Transaction<'_>) -> Result<R, TxError>,
    {
        let txn_id = clock::next_txn_id();
        let start_ts = clock::now();
        let shared = registry::register(txn_id, start_ts);
        let mut cm = contention::checkout(&self.config);
        // Pooled read/write-set buffers: cleared (cheaply) at each attempt,
        // recycled across transactions by the guard's drop — the retry loop
        // never re-creates scratch, it re-uses it.
        let mut scratch_guard = crate::scratch::ScratchGuard::acquire();
        let mut attempts: u64 = 0;
        // Resolved once per logical transaction so volatile-mode commits
        // never touch the durability OnceLock on the commit path.
        let durability_attached = self.stats.durability_sink().is_some();

        let result = loop {
            if let Some(max) = max_attempts {
                if attempts >= max {
                    break Err(TxError::AttemptsExhausted { attempts });
                }
            }
            attempts += 1;
            cm.on_begin_attempt();

            let scratch = scratch_guard.scratch();
            scratch.clear();
            let mut tx = Transaction::new(
                self,
                txn_id,
                start_ts,
                scratch,
                &mut *cm,
                &shared,
                durability_attached,
            );
            let outcome = body(&mut tx);
            match outcome {
                Ok(value) => match tx.commit() {
                    Ok(info) => {
                        cm.on_commit();
                        // MV-deferred attempts were only *recorded* into a
                        // block session; the block publish counts them once
                        // it actually commits.
                        if !info.mv_deferred {
                            self.stats
                                .record_commit(info.read_only, info.reads, info.writes);
                            // Key-range attribution for the adaptation plane:
                            // when the executor scoped this task to a key and
                            // telemetry is attached, credit the commit and its
                            // failed attempts to that key's bucket.
                            if let Some(keyed) = self.stats.key_telemetry() {
                                if let Some(key) = crate::telemetry::current_task_key() {
                                    keyed.record(key, 1, attempts - 1);
                                }
                            }
                        }
                        break Ok((
                            value,
                            TxnReport {
                                attempts,
                                reads: info.reads,
                                writes: info.writes,
                                read_only: info.read_only,
                            },
                        ));
                    }
                    Err(err) => {
                        self.note_abort(&err);
                        cm.on_abort();
                    }
                },
                Err(TxError::ExplicitRetry) => {
                    self.stats.record_explicit_retry();
                    cm.on_abort();
                    // Yield so the state we are waiting for has a chance to
                    // change before the next attempt.
                    std::thread::yield_now();
                }
                Err(err @ TxError::AttemptsExhausted { .. }) => break Err(err),
                Err(err) => {
                    self.note_abort(&err);
                    cm.on_abort();
                }
            }
        };

        registry::unregister(txn_id);
        registry::recycle(shared);
        result
    }

    fn note_abort(&self, err: &TxError) {
        if let Some(cause) = err.cause() {
            let by_cm = matches!(err, TxError::ContentionManager(_));
            self.stats.record_abort(cause, by_cm);
            // Lazy-clock validation demand: a validation failure means some
            // commit stamp ran ahead of this transaction's snapshot. Bump
            // the global clock so the retry (and every later transaction)
            // starts past it instead of re-discovering the conflict. This is
            // the only shared-clock write the lazy discipline performs, and
            // it happens exactly on observed conflict.
            if matches!(
                cause,
                crate::error::AbortCause::ReadValidation
                    | crate::error::AbortCause::CommitValidation
            ) && self.config.clock_mode == crate::config::ClockMode::Lazy
            {
                clock::advance_past(clock::now() + 1);
            }
        }
    }
}

impl std::fmt::Debug for Stm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stm")
            .field("contention_manager", &self.config.contention_manager)
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CmKind;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Barrier;
    use std::thread;

    #[test]
    fn single_threaded_counter() {
        let stm = Stm::default();
        let counter = TVar::new(0u64);
        for _ in 0..100 {
            stm.atomically(|tx| tx.modify(&counter, |v| v + 1));
        }
        assert_eq!(stm.read_now(&counter), 100);
        assert_eq!(stm.snapshot().commits, 100);
    }

    #[test]
    fn multi_variable_invariant_is_preserved() {
        // Classic bank-transfer test: the sum of two accounts is invariant
        // under concurrent transfers.
        let stm = Stm::default();
        let a = TVar::new(500i64);
        let b = TVar::new(500i64);
        let threads: usize = 4;
        let transfers_per_thread: usize = 250;
        let barrier = Arc::new(Barrier::new(threads));

        thread::scope(|s| {
            for t in 0..threads {
                let stm = stm.clone();
                let a = a.clone();
                let b = b.clone();
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    barrier.wait();
                    for i in 0..transfers_per_thread {
                        let amount = ((t + i) % 7) as i64 - 3;
                        stm.atomically(|tx| {
                            let av = *tx.read(&a)?;
                            let bv = *tx.read(&b)?;
                            tx.write(&a, av - amount)?;
                            tx.write(&b, bv + amount)?;
                            Ok(())
                        });
                    }
                });
            }
        });

        let total = stm.read_now(&a) + stm.read_now(&b);
        assert_eq!(total, 1000, "money must be conserved");
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        for kind in CmKind::ALL {
            let stm = Stm::with_contention_manager(kind);
            let counter = TVar::new(0u64);
            let threads: u64 = 4;
            let increments: u64 = 200;

            thread::scope(|s| {
                for _ in 0..threads {
                    let stm = stm.clone();
                    let counter = counter.clone();
                    s.spawn(move || {
                        for _ in 0..increments {
                            stm.atomically(|tx| tx.modify(&counter, |v| v + 1));
                        }
                    });
                }
            });

            assert_eq!(
                stm.read_now(&counter),
                threads * increments,
                "lost updates under {kind}"
            );
        }
    }

    #[test]
    fn try_atomically_gives_up_after_max_attempts() {
        let stm = Stm::new(StmConfig::default().with_max_attempts(3));
        let calls = AtomicU64::new(0);
        let result: Result<((), TxnReport), TxError> = stm.try_atomically(|tx| {
            calls.fetch_add(1, Ordering::Relaxed);
            tx.retry()
        });
        match result {
            Err(TxError::AttemptsExhausted { attempts }) => assert_eq!(attempts, 3),
            other => panic!("expected AttemptsExhausted, got {other:?}"),
        }
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn explicit_retry_reruns_the_block() {
        let stm = Stm::default();
        let gate = TVar::new(false);
        let attempts = AtomicU64::new(0);

        // A writer thread flips the gate; the reader retries until it is set.
        thread::scope(|s| {
            {
                let stm = stm.clone();
                let gate = gate.clone();
                s.spawn(move || {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    stm.atomically(|tx| tx.write(&gate, true));
                });
            }
            let observed = stm.atomically(|tx| {
                attempts.fetch_add(1, Ordering::Relaxed);
                if *tx.read(&gate)? {
                    Ok(true)
                } else {
                    tx.retry()
                }
            });
            assert!(observed);
        });
        assert!(attempts.load(Ordering::Relaxed) >= 1);
        assert!(stm.snapshot().explicit_retries >= 1);
    }

    #[test]
    fn stats_track_commits_and_reads() {
        let stm = Stm::default();
        let a = TVar::new(1u32);
        let b = TVar::new(2u32);
        stm.atomically(|tx| {
            let x = *tx.read(&a)?;
            let y = *tx.read(&b)?;
            tx.write(&a, x + y)?;
            Ok(())
        });
        let snap = stm.snapshot();
        assert_eq!(snap.commits, 1);
        assert_eq!(snap.reads, 2);
        assert_eq!(snap.writes, 1);
    }

    #[test]
    fn clones_share_statistics() {
        let stm = Stm::default();
        let clone = stm.clone();
        let v = TVar::new(0u8);
        clone.atomically(|tx| tx.write(&v, 1));
        assert_eq!(stm.snapshot().commits, 1);
    }

    #[test]
    fn write_skew_is_prevented() {
        // Classic write-skew shape: each transaction reads both variables and,
        // if the sum permits, decrements one of them. Under serializable
        // execution the sum never goes negative; under write skew two
        // transactions can both observe sum == 1 and both decrement.
        for round in 0..20 {
            let stm = Stm::default();
            let a = TVar::new(1i64);
            let b = TVar::new(1i64);

            thread::scope(|s| {
                for which in 0..2 {
                    let stm = stm.clone();
                    let (a, b) = (a.clone(), b.clone());
                    s.spawn(move || {
                        stm.atomically(|tx| {
                            let av = *tx.read(&a)?;
                            let bv = *tx.read(&b)?;
                            if av + bv >= 1 {
                                if which == 0 {
                                    tx.write(&a, av - 1)?;
                                } else {
                                    tx.write(&b, bv - 1)?;
                                }
                            }
                            Ok(())
                        });
                    });
                }
            });

            let (av, bv) = (stm.read_now(&a), stm.read_now(&b));
            assert!(
                av + bv >= 0,
                "round {round}: write skew violated invariant: a={av} b={bv}"
            );
        }
    }

    #[test]
    fn keyed_telemetry_attributes_commits_to_scoped_key_ranges() {
        use crate::telemetry::{with_task_key, KeyRangeTelemetry};

        let stm = Stm::default();
        let telemetry = Arc::new(KeyRangeTelemetry::new(0, 99, 4));
        assert!(stm.stats().attach_key_telemetry(Arc::clone(&telemetry)));
        // A second attachment is refused, the first stays in place.
        assert!(!stm
            .stats()
            .attach_key_telemetry(Arc::new(KeyRangeTelemetry::new(0, 9, 1))));

        let v = TVar::new(0u64);
        with_task_key(10, || stm.atomically(|tx| tx.modify(&v, |x| x + 1)));
        with_task_key(80, || {
            stm.atomically(|tx| tx.modify(&v, |x| x + 1));
            stm.atomically(|tx| tx.modify(&v, |x| x + 1));
        });
        // No key in scope: counted globally but not attributed.
        stm.atomically(|tx| tx.modify(&v, |x| x + 1));

        let snap = telemetry.snapshot();
        assert_eq!(snap.total_commits(), 3);
        assert_eq!(snap.buckets()[0], (1, 0));
        assert_eq!(snap.buckets()[3], (2, 0));
        assert_eq!(stm.snapshot().commits, 4);
    }

    #[test]
    fn debug_format_includes_policy() {
        let stm = Stm::with_contention_manager(CmKind::Karma);
        assert!(format!("{stm:?}").contains("Karma"));
    }

    #[test]
    fn config_stripes_flow_into_the_stats_block() {
        let shared = Stm::new(StmConfig::default().with_stats_stripes(1));
        assert_eq!(shared.stats().stripes(), 1);
        let striped = Stm::default();
        assert!(striped.stats().stripes() > 1);
    }

    /// Commit stamps must strictly increase per variable in every clock
    /// mode: version equality is what validation uses to pin an exact
    /// committed value, so a stamp re-use would admit stale reads.
    #[test]
    fn commit_stamps_are_strictly_monotonic_per_variable() {
        use crate::config::ClockMode;
        for mode in [ClockMode::Ticked, ClockMode::Lazy] {
            let stm = Stm::new(StmConfig::default().with_clock_mode(mode));
            let v = TVar::new(0u64);
            let threads: u64 = 4;
            let commits: u64 = 200;
            let initial = v.version();

            thread::scope(|s| {
                // Writers hammer the same variable; a sampler checks that the
                // observable stamp sequence never regresses.
                for _ in 0..threads {
                    let stm = stm.clone();
                    let v = v.clone();
                    s.spawn(move || {
                        for _ in 0..commits {
                            stm.atomically(|tx| tx.modify(&v, |x| x + 1));
                        }
                    });
                }
                let v = v.clone();
                s.spawn(move || {
                    let mut last = 0;
                    for _ in 0..2000 {
                        let seen = v.version();
                        assert!(seen >= last, "version regressed: {seen} < {last}");
                        last = seen;
                        std::hint::spin_loop();
                    }
                });
            });

            assert_eq!(stm.read_now(&v), threads * commits, "mode {mode}");
            // Each of the threads*commits publishes stamped at least one past
            // the previous stamp, so the final version bounds them below.
            assert!(
                v.version() >= initial + threads * commits,
                "mode {mode}: final version {} admits stamp re-use",
                v.version()
            );
        }
    }

    /// Racing writers keep two variables equal; lazy-mode readers (including
    /// the read-only fast path, which never revalidates at commit) must never
    /// observe a mixed snapshot — the "no stale-read admission" property.
    #[test]
    fn lazy_clock_readers_never_observe_torn_snapshots() {
        use crate::config::ClockMode;
        let stm = Stm::new(StmConfig::default().with_clock_mode(ClockMode::Lazy));
        let a = TVar::new(0u64);
        let b = TVar::new(0u64);
        let rounds: u64 = 500;

        thread::scope(|s| {
            for _ in 0..2 {
                let stm = stm.clone();
                let (a, b) = (a.clone(), b.clone());
                s.spawn(move || {
                    for _ in 0..rounds {
                        stm.atomically(|tx| {
                            let next = *tx.read(&a)? + 1;
                            tx.write(&a, next)?;
                            tx.write(&b, next)?;
                            Ok(())
                        });
                    }
                });
            }
            for _ in 0..2 {
                let stm = stm.clone();
                let (a, b) = (a.clone(), b.clone());
                s.spawn(move || {
                    for _ in 0..rounds {
                        let (av, bv) = stm.atomically(|tx| {
                            let av = *tx.read(&a)?;
                            let bv = *tx.read(&b)?;
                            Ok((av, bv))
                        });
                        assert_eq!(av, bv, "read-only snapshot tore: a={av} b={bv}");
                    }
                });
            }
        });
        assert_eq!(stm.read_now(&a), 2 * rounds);
    }

    /// Runtimes with different clock modes may share variables: both stamp
    /// past the variable's current version, so invariants (and per-variable
    /// stamp monotonicity) survive mixing. This is the documented contract
    /// for process-wide clock-mode mixing.
    #[test]
    fn mixed_clock_modes_preserve_invariants_on_shared_variables() {
        use crate::config::ClockMode;
        let ticked = Stm::new(StmConfig::default().with_clock_mode(ClockMode::Ticked));
        let lazy = Stm::new(StmConfig::default().with_clock_mode(ClockMode::Lazy));
        let a = TVar::new(500i64);
        let b = TVar::new(500i64);
        let rounds = 300;

        thread::scope(|s| {
            for (t, stm) in [ticked.clone(), lazy.clone(), ticked.clone(), lazy.clone()]
                .into_iter()
                .enumerate()
            {
                let (a, b) = (a.clone(), b.clone());
                s.spawn(move || {
                    for i in 0..rounds {
                        let amount = ((t + i) % 5) as i64 - 2;
                        stm.atomically(|tx| {
                            let av = *tx.read(&a)?;
                            let bv = *tx.read(&b)?;
                            tx.write(&a, av - amount)?;
                            tx.write(&b, bv + amount)?;
                            Ok(())
                        });
                    }
                });
            }
            let (a, lazy_reader) = (a.clone(), lazy.clone());
            let b = b.clone();
            s.spawn(move || {
                let mut last_version = 0;
                for _ in 0..rounds {
                    let sum = lazy_reader.atomically(|tx| Ok(*tx.read(&a)? + *tx.read(&b)?));
                    assert_eq!(sum, 1000, "mixed-mode snapshot broke the invariant");
                    let seen = a.version();
                    assert!(seen >= last_version, "stamp regressed under mixing");
                    last_version = seen;
                }
            });
        });
        assert_eq!(ticked.read_now(&a) + ticked.read_now(&b), 1000);
    }
}
