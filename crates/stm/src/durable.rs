//! Durability hook on the commit path.
//!
//! The STM stays storage-agnostic: it only knows about a
//! [`DurabilitySink`] that can be attached once to an [`crate::StmStats`]
//! block (mirroring the key-range telemetry attachment). The executor
//! scopes a serialized *durable payload* around each task with
//! [`with_durable_payload`]; when a writing transaction reaches its commit
//! point the payload is consumed and handed to the sink:
//!
//! * [`DurabilitySink::log_commit`] runs **between publish and lock
//!   release**, so the sink observes commits in an order consistent with
//!   transaction dependencies (a dependent transaction cannot even read an
//!   owned variable until release, hence cannot log first).
//! * [`DurabilitySink::wait_durable`] runs **after release**, so no STM
//!   lock is ever held across an fsync wait.
//!
//! Wall-clock spent inside `wait_durable` is accumulated per thread (see
//! [`take_group_wait_nanos`]) so the executor can surface group-commit
//! stalls as their own telemetry category instead of folding them into
//! generic idle time.

use std::cell::Cell;

use parking_lot::Mutex;

/// Where committed write-sets go to become durable. Implementations batch
/// concurrent calls (group commit); `wait_durable` returns once the record
/// identified by the ticket from `log_commit` is on stable storage.
pub trait DurabilitySink: Send + Sync + std::fmt::Debug {
    /// Hand a serialized committed write-set to the log. Called while the
    /// committing transaction still owns its write set — must be cheap
    /// (enqueue, not I/O) and must not block on other transactions. The
    /// payload is borrowed: a sink that needs the bytes past this call
    /// copies them into its own staging buffer, which lets the commit path
    /// recycle the payload allocation (see [`recycle_payload`]).
    /// Returns a ticket for [`DurabilitySink::wait_durable`].
    fn log_commit(&self, payload: &[u8]) -> u64;

    /// Block until the record behind `ticket` is durable. Called after all
    /// STM locks are released.
    fn wait_durable(&self, ticket: u64);
}

/// Process-wide pool of payload buffers. A payload `Vec<u8>` travels from
/// the producer that serialized the redo record, through the task envelope,
/// to the worker that stages it with [`with_durable_payload`] — and once the
/// commit path has handed the bytes to the sink, the buffer lands back here
/// for the next producer. Global (not thread-local) because take and return
/// happen on different threads. Bounded so a burst of oversized records
/// cannot pin memory.
static PAYLOAD_POOL: Mutex<Vec<Vec<u8>>> = Mutex::new(Vec::new());
const PAYLOAD_POOL_MAX: usize = 1024;

/// Take a cleared payload buffer from the pool (empty on pool miss).
/// Producers serialize redo records into this instead of a fresh `Vec` so
/// the steady-state submission path stops allocating payloads.
pub fn recycled_payload() -> Vec<u8> {
    PAYLOAD_POOL.lock().pop().unwrap_or_default()
}

/// Return a consumed payload buffer to the pool. Called by the commit path
/// after [`DurabilitySink::log_commit`], and by the payload scope guard for
/// payloads no transaction consumed (aborted or read-only tasks).
pub fn recycle_payload(mut payload: Vec<u8>) {
    payload.clear();
    if payload.capacity() == 0 {
        return;
    }
    let mut pool = PAYLOAD_POOL.lock();
    if pool.len() < PAYLOAD_POOL_MAX {
        pool.push(payload);
    }
}

thread_local! {
    /// Serialized durable payload for the task currently executing on this
    /// thread, consumed by the first writing commit inside the scope.
    static PENDING_PAYLOAD: Cell<Option<Vec<u8>>> = const { Cell::new(None) };
    /// Wall-clock nanoseconds this thread has spent blocked in group-commit
    /// waits since the last [`take_group_wait_nanos`] drain.
    static GROUP_WAIT_NANOS: Cell<u64> = const { Cell::new(0) };
}

/// Restores the previous pending payload on drop so nested scopes and
/// panics unwind cleanly. An unconsumed payload (the task aborted, or was
/// read-only) is recycled into the pool rather than dropped — aborted tasks
/// log nothing, but their buffers still come back.
struct PayloadGuard {
    previous: Option<Vec<u8>>,
}

impl Drop for PayloadGuard {
    fn drop(&mut self) {
        if let Some(unconsumed) = PENDING_PAYLOAD.with(|slot| slot.replace(self.previous.take())) {
            recycle_payload(unconsumed);
        }
    }
}

/// Run `f` with `payload` staged as the durable payload for the first
/// writing transaction that commits inside it. If no transaction consumes
/// the payload (the task aborted, or was read-only), it is discarded when
/// the scope ends.
pub fn with_durable_payload<R>(payload: Vec<u8>, f: impl FnOnce() -> R) -> R {
    let guard = PayloadGuard {
        previous: PENDING_PAYLOAD.with(|slot| slot.replace(Some(payload))),
    };
    let result = f();
    drop(guard);
    result
}

/// Consume the staged payload, if any. Called by the commit path exactly
/// when a writing transaction has published its write set.
pub fn take_pending_payload() -> Option<Vec<u8>> {
    PENDING_PAYLOAD.with(|slot| slot.take())
}

/// Add group-commit wait time observed on this thread. Called by sink
/// implementations around their `wait_durable` blocking.
pub fn add_group_wait_nanos(nanos: u64) {
    GROUP_WAIT_NANOS.with(|slot| slot.set(slot.get().saturating_add(nanos)));
}

/// Drain this thread's accumulated group-commit wait time (resets to
/// zero). Executors call this after running a batch of tasks to attribute
/// the wait to the right worker.
pub fn take_group_wait_nanos() -> u64 {
    GROUP_WAIT_NANOS.with(|slot| slot.replace(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Stm, TVar};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::sync::Mutex;

    #[derive(Debug, Default)]
    struct RecordingSink {
        logged: Mutex<Vec<Vec<u8>>>,
        waits: AtomicU64,
    }

    impl DurabilitySink for RecordingSink {
        fn log_commit(&self, payload: &[u8]) -> u64 {
            let mut logged = self.logged.lock().unwrap();
            logged.push(payload.to_vec());
            logged.len() as u64
        }

        fn wait_durable(&self, _ticket: u64) {
            self.waits.fetch_add(1, Ordering::Relaxed);
            add_group_wait_nanos(5);
        }
    }

    #[test]
    fn unconsumed_payloads_return_to_the_pool() {
        // Use a recognizable capacity so the round-trip is observable even
        // with other tests sharing the global pool.
        let payload = Vec::with_capacity(4096);
        with_durable_payload(payload, || {
            // Nothing consumes the payload: the scope guard must recycle it.
        });
        let recycled = recycled_payload();
        assert!(recycled.is_empty());
        assert!(recycled.capacity() > 0, "pool returned a fresh buffer");
        recycle_payload(recycled);
    }

    #[test]
    fn payload_scopes_nest_and_clear() {
        assert_eq!(take_pending_payload(), None);
        with_durable_payload(vec![1], || {
            assert_eq!(take_pending_payload(), Some(vec![1]));
            assert_eq!(take_pending_payload(), None); // Consumed once.
            with_durable_payload(vec![2], || {
                assert_eq!(take_pending_payload(), Some(vec![2]));
            });
        });
        assert_eq!(take_pending_payload(), None);
    }

    #[test]
    fn writing_commit_consumes_payload_and_waits() {
        let stm = Stm::default();
        let sink = Arc::new(RecordingSink::default());
        assert!(stm.stats().attach_durability(sink.clone()));
        // Second attachment is refused.
        assert!(!stm
            .stats()
            .attach_durability(Arc::new(RecordingSink::default())));

        let var = TVar::new(0u64);
        with_durable_payload(b"op-1".to_vec(), || {
            stm.atomically(|tx| {
                let v = *tx.read(&var)?;
                tx.write(&var, v + 1)
            });
        });
        assert_eq!(*sink.logged.lock().unwrap(), vec![b"op-1".to_vec()]);
        assert_eq!(sink.waits.load(Ordering::Relaxed), 1);
        assert_eq!(take_group_wait_nanos(), 5);
        assert_eq!(take_group_wait_nanos(), 0);
    }

    #[test]
    fn read_only_commit_leaves_payload_unconsumed() {
        let stm = Stm::default();
        let sink = Arc::new(RecordingSink::default());
        stm.stats().attach_durability(sink.clone());
        let var = TVar::new(7u64);
        with_durable_payload(b"lookup".to_vec(), || {
            let value = stm.atomically(|tx| tx.read(&var).map(|v| *v));
            assert_eq!(value, 7);
        });
        assert!(sink.logged.lock().unwrap().is_empty());
        assert_eq!(sink.waits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn commits_without_a_scoped_payload_log_nothing() {
        let stm = Stm::default();
        let sink = Arc::new(RecordingSink::default());
        stm.stats().attach_durability(sink.clone());
        let var = TVar::new(0u64);
        stm.atomically(|tx| tx.write(&var, 1));
        assert!(sink.logged.lock().unwrap().is_empty());
    }

    #[test]
    fn concurrent_writing_commits_each_log_exactly_once() {
        // Contended increments from several threads: every committed
        // transaction must consume its payload exactly once, however many
        // aborted attempts preceded the commit.
        let stm = Stm::default();
        let sink = Arc::new(RecordingSink::default());
        stm.stats().attach_durability(sink.clone());
        let var = Arc::new(TVar::new(0u64));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let stm = stm.clone();
                let var = Arc::clone(&var);
                std::thread::spawn(move || {
                    for op in 0..25u8 {
                        with_durable_payload(vec![op], || {
                            stm.atomically(|tx| {
                                let v = *tx.read(&var)? + 1;
                                tx.write(&var, v)
                            });
                        });
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().unwrap();
        }
        assert_eq!(stm.read_now(&var), 100);
        assert_eq!(sink.logged.lock().unwrap().len(), 100);
    }
}
