//! Error and abort-cause types for transactions.

use std::fmt;

/// Why a transaction attempt could not proceed.
///
/// A `TxError` returned from inside an atomic block causes
/// [`crate::Stm::atomically`] to abort the current attempt and (for the
/// retryable variants) start a fresh one. The executor layer mostly treats
/// aborts as an opaque "retry" signal, but the cause is recorded in the
/// per-run statistics because the paper reports contention frequencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxError {
    /// The transaction observed (or would have committed) state that
    /// conflicts with a concurrent transaction.
    Conflict(AbortCause),
    /// The contention manager decided this transaction should abort and
    /// retry rather than keep waiting for an enemy transaction.
    ContentionManager(AbortCause),
    /// The user requested an explicit retry of the whole atomic block
    /// (e.g. a condition it waits for does not hold yet).
    ExplicitRetry,
    /// The transaction exceeded the configured maximum number of attempts.
    AttemptsExhausted {
        /// Number of attempts that were made before giving up.
        attempts: u64,
    },
}

impl TxError {
    /// True when the error should cause the atomic block to be re-executed.
    pub fn is_retryable(&self) -> bool {
        !matches!(self, TxError::AttemptsExhausted { .. })
    }

    /// The abort cause carried by this error, if any.
    pub fn cause(&self) -> Option<AbortCause> {
        match self {
            TxError::Conflict(c) | TxError::ContentionManager(c) => Some(*c),
            _ => None,
        }
    }
}

impl fmt::Display for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::Conflict(cause) => write!(f, "transaction conflict ({cause})"),
            TxError::ContentionManager(cause) => {
                write!(f, "aborted by contention manager ({cause})")
            }
            TxError::ExplicitRetry => write!(f, "explicit retry requested"),
            TxError::AttemptsExhausted { attempts } => {
                write!(f, "transaction gave up after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for TxError {}

/// The phase / reason for which a transaction attempt was abandoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortCause {
    /// A read observed a variable whose version is newer than the
    /// transaction's snapshot and the snapshot could not be extended.
    ReadValidation,
    /// A read found the variable owned (being committed) by another
    /// transaction and the contention manager chose not to keep waiting.
    ReadOwned,
    /// Commit-time acquisition of a written variable failed because another
    /// transaction owns it.
    CommitAcquire,
    /// Commit-time validation of the read set failed.
    CommitValidation,
}

impl fmt::Display for AbortCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AbortCause::ReadValidation => "read validation",
            AbortCause::ReadOwned => "read of owned variable",
            AbortCause::CommitAcquire => "commit acquisition",
            AbortCause::CommitValidation => "commit validation",
        };
        f.write_str(s)
    }
}

impl AbortCause {
    /// All abort causes, useful for building per-cause statistics tables.
    pub const ALL: [AbortCause; 4] = [
        AbortCause::ReadValidation,
        AbortCause::ReadOwned,
        AbortCause::CommitAcquire,
        AbortCause::CommitValidation,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability() {
        assert!(TxError::Conflict(AbortCause::ReadValidation).is_retryable());
        assert!(TxError::ContentionManager(AbortCause::CommitAcquire).is_retryable());
        assert!(TxError::ExplicitRetry.is_retryable());
        assert!(!TxError::AttemptsExhausted { attempts: 3 }.is_retryable());
    }

    #[test]
    fn cause_extraction() {
        assert_eq!(
            TxError::Conflict(AbortCause::CommitValidation).cause(),
            Some(AbortCause::CommitValidation)
        );
        assert_eq!(TxError::ExplicitRetry.cause(), None);
    }

    #[test]
    fn display_is_informative() {
        let msgs: Vec<String> = [
            TxError::Conflict(AbortCause::ReadValidation),
            TxError::ContentionManager(AbortCause::ReadOwned),
            TxError::ExplicitRetry,
            TxError::AttemptsExhausted { attempts: 7 },
        ]
        .iter()
        .map(|e| e.to_string())
        .collect();
        assert!(msgs[0].contains("conflict"));
        assert!(msgs[1].contains("contention manager"));
        assert!(msgs[2].contains("retry"));
        assert!(msgs[3].contains('7'));
    }

    #[test]
    fn all_causes_listed_once() {
        let set: std::collections::HashSet<_> = AbortCause::ALL.iter().collect();
        assert_eq!(set.len(), AbortCause::ALL.len());
    }
}
