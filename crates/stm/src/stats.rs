//! Statistics counters for STM activity.
//!
//! The paper reports, besides raw throughput, the *frequency of contention*
//! (how often transactions encounter conflicts) and argues that key-based
//! partitioning lowers it. These counters are what the harness reads to
//! regenerate that table: committed transactions, aborted attempts broken
//! down by cause, and backoff events.
//!
//! The counters are striped over per-thread cache-line-padded shards (see
//! [`crate::striped`]): every hot-path `record_*` call increments the
//! calling thread's own shard, and [`StmStats::snapshot`] aggregates the
//! shards lazily. With at least as many shards as worker threads (the
//! default; tune with [`crate::StmConfig::stats_stripes`]) commit-path
//! bookkeeping touches no shared cache line at all.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::durable::DurabilitySink;
use crate::error::AbortCause;
use crate::striped::Shards;
use crate::telemetry::KeyRangeTelemetry;

/// One thread-shard of the statistics counters (one padded cache line-pair).
#[derive(Debug, Default)]
struct StatShard {
    commits: AtomicU64,
    read_only_commits: AtomicU64,
    aborts_read_validation: AtomicU64,
    aborts_read_owned: AtomicU64,
    aborts_commit_acquire: AtomicU64,
    aborts_commit_validation: AtomicU64,
    cm_aborts: AtomicU64,
    explicit_retries: AtomicU64,
    backoff_events: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    mv_blocks: AtomicU64,
    mv_commits: AtomicU64,
    mv_reexecutions: AtomicU64,
    mv_block_retries: AtomicU64,
}

/// Aggregate, shareable counters for one [`crate::Stm`] runtime.
///
/// All counters are monotonically increasing; [`StmStats::snapshot`] captures
/// a consistent-enough point-in-time view (individual counters are exact,
/// cross-counter skew is bounded by in-flight transactions).
#[derive(Debug)]
pub struct StmStats {
    shards: Shards<StatShard>,
    /// Optional key-range telemetry (set once, shared by every clone of the
    /// owning [`crate::Stm`] since clones share this counter block). Fed by
    /// the commit path whenever a task key is in scope — see
    /// [`crate::telemetry`].
    keyed: OnceLock<Arc<KeyRangeTelemetry>>,
    /// Optional durability sink (set once, like the telemetry above). When
    /// attached, writing commits with a staged payload hand it to the sink
    /// between publish and release — see [`crate::durable`].
    durability: OnceLock<Arc<dyn DurabilitySink>>,
}

impl Default for StmStats {
    fn default() -> Self {
        StmStats {
            shards: Shards::new(0),
            keyed: OnceLock::new(),
            durability: OnceLock::new(),
        }
    }
}

impl StmStats {
    /// Create a fresh set of zeroed counters with the default shard count.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Create zeroed counters striped over `stripes` shards (rounded up to a
    /// power of two; `0` = default, `1` = the fully shared legacy layout).
    pub fn with_stripes(stripes: usize) -> Arc<Self> {
        Arc::new(StmStats {
            shards: Shards::new(stripes),
            keyed: OnceLock::new(),
            durability: OnceLock::new(),
        })
    }

    /// Number of shards the counters are striped over.
    pub fn stripes(&self) -> usize {
        self.shards.len()
    }

    pub(crate) fn record_commit(&self, read_only: bool, reads: u64, writes: u64) {
        let shard = self.shards.local();
        shard.commits.fetch_add(1, Ordering::Relaxed);
        if read_only {
            shard.read_only_commits.fetch_add(1, Ordering::Relaxed);
        }
        shard.reads.fetch_add(reads, Ordering::Relaxed);
        shard.writes.fetch_add(writes, Ordering::Relaxed);
    }

    pub(crate) fn record_abort(&self, cause: AbortCause, by_cm: bool) {
        let shard = self.shards.local();
        match cause {
            AbortCause::ReadValidation => &shard.aborts_read_validation,
            AbortCause::ReadOwned => &shard.aborts_read_owned,
            AbortCause::CommitAcquire => &shard.aborts_commit_acquire,
            AbortCause::CommitValidation => &shard.aborts_commit_validation,
        }
        .fetch_add(1, Ordering::Relaxed);
        if by_cm {
            shard.cm_aborts.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_explicit_retry(&self) {
        self.shards
            .local()
            .explicit_retries
            .fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_backoff(&self) {
        self.shards
            .local()
            .backoff_events
            .fetch_add(1, Ordering::Relaxed);
    }

    /// One committed MV block: `ops` transactions published atomically after
    /// `reexecutions` dependent repairs and `retries` publish attempts that
    /// found a stale base. (The per-transaction commits are recorded through
    /// [`StmStats::record_commit`] by the block publish path, so `commits`
    /// stays comparable across lanes; these counters identify the MV subset.)
    pub(crate) fn record_mv_block(&self, ops: u64, reexecutions: u64, retries: u64) {
        let shard = self.shards.local();
        shard.mv_blocks.fetch_add(1, Ordering::Relaxed);
        shard.mv_commits.fetch_add(ops, Ordering::Relaxed);
        shard
            .mv_reexecutions
            .fetch_add(reexecutions, Ordering::Relaxed);
        shard.mv_block_retries.fetch_add(retries, Ordering::Relaxed);
    }

    /// Attach key-range contention telemetry. Returns `false` (leaving the
    /// existing attachment in place) if telemetry was already attached; the
    /// attachment is permanent for the lifetime of the counters, which keeps
    /// the commit-path check a single atomic load.
    pub fn attach_key_telemetry(&self, telemetry: Arc<KeyRangeTelemetry>) -> bool {
        self.keyed.set(telemetry).is_ok()
    }

    /// The attached key-range telemetry, if any.
    pub fn key_telemetry(&self) -> Option<&Arc<KeyRangeTelemetry>> {
        self.keyed.get()
    }

    /// Attach a durability sink. Returns `false` (leaving the existing
    /// attachment in place) if a sink was already attached; like the key
    /// telemetry, the attachment is permanent so the commit-path check
    /// stays a single atomic load.
    pub fn attach_durability(&self, sink: Arc<dyn DurabilitySink>) -> bool {
        self.durability.set(sink).is_ok()
    }

    /// The attached durability sink, if any.
    pub fn durability_sink(&self) -> Option<&Arc<dyn DurabilitySink>> {
        self.durability.get()
    }

    /// Capture the current counter values (lazy aggregation: sums every
    /// per-thread shard; cost is proportional to the shard count and paid by
    /// the snapshot reader, not by the commit path).
    pub fn snapshot(&self) -> StmStatsSnapshot {
        let mut snap = StmStatsSnapshot::default();
        for shard in self.shards.iter() {
            snap.commits += shard.commits.load(Ordering::Relaxed);
            snap.read_only_commits += shard.read_only_commits.load(Ordering::Relaxed);
            snap.aborts_read_validation += shard.aborts_read_validation.load(Ordering::Relaxed);
            snap.aborts_read_owned += shard.aborts_read_owned.load(Ordering::Relaxed);
            snap.aborts_commit_acquire += shard.aborts_commit_acquire.load(Ordering::Relaxed);
            snap.aborts_commit_validation += shard.aborts_commit_validation.load(Ordering::Relaxed);
            snap.cm_aborts += shard.cm_aborts.load(Ordering::Relaxed);
            snap.explicit_retries += shard.explicit_retries.load(Ordering::Relaxed);
            snap.backoff_events += shard.backoff_events.load(Ordering::Relaxed);
            snap.reads += shard.reads.load(Ordering::Relaxed);
            snap.writes += shard.writes.load(Ordering::Relaxed);
            snap.mv_blocks += shard.mv_blocks.load(Ordering::Relaxed);
            snap.mv_commits += shard.mv_commits.load(Ordering::Relaxed);
            snap.mv_reexecutions += shard.mv_reexecutions.load(Ordering::Relaxed);
            snap.mv_block_retries += shard.mv_block_retries.load(Ordering::Relaxed);
        }
        snap
    }
}

/// Point-in-time view of [`StmStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StmStatsSnapshot {
    /// Successfully committed transactions.
    pub commits: u64,
    /// Committed transactions that wrote nothing.
    pub read_only_commits: u64,
    /// Attempts aborted because a read could not be validated/extended.
    pub aborts_read_validation: u64,
    /// Attempts aborted because a read found the variable owned.
    pub aborts_read_owned: u64,
    /// Attempts aborted during commit-time acquisition.
    pub aborts_commit_acquire: u64,
    /// Attempts aborted during commit-time read-set validation.
    pub aborts_commit_validation: u64,
    /// Aborts that were decided by the contention manager (subset of the
    /// cause-specific counters above).
    pub cm_aborts: u64,
    /// User-requested retries of the atomic block.
    pub explicit_retries: u64,
    /// Number of backoff waits performed.
    pub backoff_events: u64,
    /// Total transactional reads performed by committed transactions.
    pub reads: u64,
    /// Total transactional writes performed by committed transactions.
    pub writes: u64,
    /// Multi-version blocks published (see [`crate::mv`]).
    pub mv_blocks: u64,
    /// Transactions committed through the MV lane (a subset of `commits`).
    pub mv_commits: u64,
    /// Dependent re-executions performed by MV validation passes — the MV
    /// lane's analogue of aborted attempts.
    pub mv_reexecutions: u64,
    /// MV block publish retries caused by an externally invalidated base.
    pub mv_block_retries: u64,
}

impl StmStatsSnapshot {
    /// Total aborted attempts across all causes.
    pub fn total_aborts(&self) -> u64 {
        self.aborts_read_validation
            + self.aborts_read_owned
            + self.aborts_commit_acquire
            + self.aborts_commit_validation
    }

    /// Contention instances per committed transaction — the metric the paper
    /// reports (e.g. "less than 1/100th the number of completed
    /// transactions").
    pub fn contention_ratio(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.total_aborts() as f64 / self.commits as f64
        }
    }

    /// Dependent re-executions per MV-lane commit — the MV analogue of
    /// [`StmStatsSnapshot::contention_ratio`].
    pub fn mv_reexec_ratio(&self) -> f64 {
        if self.mv_commits == 0 {
            0.0
        } else {
            self.mv_reexecutions as f64 / self.mv_commits as f64
        }
    }

    /// Fraction of all commits that went through the MV lane (lane
    /// residency, aggregated over the whole key space).
    pub fn mv_residency(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.mv_commits as f64 / self.commits as f64
        }
    }

    /// Difference between two snapshots (`self` taken after `earlier`).
    pub fn since(&self, earlier: &StmStatsSnapshot) -> StmStatsSnapshot {
        StmStatsSnapshot {
            commits: self.commits - earlier.commits,
            read_only_commits: self.read_only_commits - earlier.read_only_commits,
            aborts_read_validation: self.aborts_read_validation - earlier.aborts_read_validation,
            aborts_read_owned: self.aborts_read_owned - earlier.aborts_read_owned,
            aborts_commit_acquire: self.aborts_commit_acquire - earlier.aborts_commit_acquire,
            aborts_commit_validation: self.aborts_commit_validation
                - earlier.aborts_commit_validation,
            cm_aborts: self.cm_aborts - earlier.cm_aborts,
            explicit_retries: self.explicit_retries - earlier.explicit_retries,
            backoff_events: self.backoff_events - earlier.backoff_events,
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            mv_blocks: self.mv_blocks - earlier.mv_blocks,
            mv_commits: self.mv_commits - earlier.mv_commits,
            mv_reexecutions: self.mv_reexecutions - earlier.mv_reexecutions,
            mv_block_retries: self.mv_block_retries - earlier.mv_block_retries,
        }
    }
}

/// Report about a single completed call to [`crate::Stm::atomically`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxnReport {
    /// Number of attempts it took to commit (1 = no conflicts encountered).
    pub attempts: u64,
    /// Number of transactional reads performed by the committed attempt.
    pub reads: u64,
    /// Number of transactional writes performed by the committed attempt.
    pub writes: u64,
    /// Whether the committed attempt was read-only.
    pub read_only: bool,
}

impl TxnReport {
    /// True when the transaction committed on its first attempt.
    pub fn first_try(&self) -> bool {
        self.attempts == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let stats = StmStats::new();
        stats.record_commit(false, 3, 2);
        stats.record_commit(true, 1, 0);
        stats.record_abort(AbortCause::CommitAcquire, true);
        stats.record_abort(AbortCause::ReadValidation, false);
        stats.record_backoff();
        stats.record_explicit_retry();

        let snap = stats.snapshot();
        assert_eq!(snap.commits, 2);
        assert_eq!(snap.read_only_commits, 1);
        assert_eq!(snap.aborts_commit_acquire, 1);
        assert_eq!(snap.aborts_read_validation, 1);
        assert_eq!(snap.total_aborts(), 2);
        assert_eq!(snap.cm_aborts, 1);
        assert_eq!(snap.backoff_events, 1);
        assert_eq!(snap.explicit_retries, 1);
        assert_eq!(snap.reads, 4);
        assert_eq!(snap.writes, 2);
    }

    #[test]
    fn contention_ratio_handles_zero_commits() {
        let snap = StmStatsSnapshot::default();
        assert_eq!(snap.contention_ratio(), 0.0);
    }

    #[test]
    fn contention_ratio_is_aborts_per_commit() {
        let stats = StmStats::new();
        for _ in 0..10 {
            stats.record_commit(false, 1, 1);
        }
        stats.record_abort(AbortCause::CommitValidation, false);
        let snap = stats.snapshot();
        assert!((snap.contention_ratio() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn since_subtracts_counters() {
        let stats = StmStats::new();
        stats.record_commit(false, 1, 1);
        let before = stats.snapshot();
        stats.record_commit(false, 2, 2);
        stats.record_abort(AbortCause::ReadOwned, true);
        let after = stats.snapshot();
        let delta = after.since(&before);
        assert_eq!(delta.commits, 1);
        assert_eq!(delta.aborts_read_owned, 1);
        assert_eq!(delta.reads, 2);
    }

    #[test]
    fn striped_counters_aggregate_exactly_across_threads() {
        let stats = StmStats::new();
        assert!(stats.stripes() > 1, "default layout must be striped");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let stats = Arc::clone(&stats);
                s.spawn(move || {
                    for _ in 0..100 {
                        stats.record_commit(false, 2, 1);
                    }
                    stats.record_abort(AbortCause::ReadOwned, false);
                    stats.record_backoff();
                });
            }
        });
        let snap = stats.snapshot();
        assert_eq!(snap.commits, 400);
        assert_eq!(snap.reads, 800);
        assert_eq!(snap.writes, 400);
        assert_eq!(snap.aborts_read_owned, 4);
        assert_eq!(snap.backoff_events, 4);
    }

    #[test]
    fn single_stripe_recreates_the_shared_layout() {
        let stats = StmStats::with_stripes(1);
        assert_eq!(stats.stripes(), 1);
        stats.record_commit(true, 1, 0);
        let snap = stats.snapshot();
        assert_eq!(snap.commits, 1);
        assert_eq!(snap.read_only_commits, 1);
    }

    #[test]
    fn stripe_counts_round_up() {
        assert_eq!(StmStats::with_stripes(3).stripes(), 4);
    }

    #[test]
    fn txn_report_first_try() {
        assert!(TxnReport {
            attempts: 1,
            ..Default::default()
        }
        .first_try());
        assert!(!TxnReport {
            attempts: 3,
            ..Default::default()
        }
        .first_try());
    }
}
