//! Global version clock.
//!
//! The STM uses a single process-wide version clock in the style of TL2.
//! Every committed writer transaction stamps the variables it publishes with
//! a commit timestamp derived from the clock; readers validate that the
//! variables they observed have not been re-stamped past the timestamp at
//! which their snapshot began.
//!
//! Two stamping disciplines are supported (selected per runtime via
//! [`crate::StmConfig::clock_mode`]):
//!
//! * **GV1 / [`crate::ClockMode::Ticked`]** — every writer commit advances
//!   the clock with [`tick`] and stamps with the unique result. Simple, but
//!   the `fetch_add` makes the clock's cache line the hottest word in the
//!   process: even fully disjoint commits serialize on it.
//! * **GV5-style / [`crate::ClockMode::Lazy`]** — writers stamp with
//!   `now() + 1` (or one past the stamped variable's current version,
//!   whichever is larger) *without* advancing the clock. The clock is bumped
//!   only on observed validation demand ([`advance_past`], driven by
//!   validation-failure aborts), so disjoint-key commits perform **zero**
//!   shared-clock writes. Commit stamps are no longer globally unique —
//!   disjoint writers may share a stamp, and stamps may run ahead of
//!   `now()` — but every *variable's* stamp still strictly increases with
//!   each commit, which is the property snapshot validation relies on
//!   (version equality pins the exact committed value).
//!
//! Keeping the clock process-wide (rather than per-[`crate::Stm`] instance)
//! means transactional variables can be freely shared between independently
//! configured `Stm` runtimes — e.g. the executor's workers and a monitoring
//! thread — without version-space confusion. Runtimes with different clock
//! modes may also share variables: both disciplines stamp past the
//! variable's current version, so stamps never regress (see
//! [`crate::ClockMode`] for the mixing caveats).

use std::sync::atomic::{AtomicU64, Ordering};

/// The process-wide version clock.
static GLOBAL_CLOCK: AtomicU64 = AtomicU64::new(0);

/// Counter for transaction identifiers. Identifier 0 is reserved to mean
/// "no transaction" (an unowned variable).
static TXN_IDS: AtomicU64 = AtomicU64::new(1);

/// Counter for transactional-variable identifiers. Identifiers provide the
/// canonical acquisition order used during commit to avoid deadlock.
static TVAR_IDS: AtomicU64 = AtomicU64::new(1);

/// Read the current value of the global version clock.
#[inline]
pub fn now() -> u64 {
    GLOBAL_CLOCK.load(Ordering::Acquire)
}

/// Advance the global version clock and return the new (unique) timestamp.
#[inline]
pub fn tick() -> u64 {
    GLOBAL_CLOCK.fetch_add(1, Ordering::AcqRel) + 1
}

/// Raise the global version clock to at least `target` (a no-op when it is
/// already there). Used by the lazy clock mode to publish validation demand:
/// once a stale stamp has caused an abort, advancing the clock lets retries
/// (and every later transaction) start their snapshots past it instead of
/// re-discovering the conflict.
#[inline]
pub fn advance_past(target: u64) {
    GLOBAL_CLOCK.fetch_max(target, Ordering::AcqRel);
}

/// Allocate a fresh transaction identifier. Never returns 0.
#[inline]
pub fn next_txn_id() -> u64 {
    TXN_IDS.fetch_add(1, Ordering::Relaxed)
}

/// Allocate a fresh transactional-variable identifier. Never returns 0.
#[inline]
pub fn next_tvar_id() -> u64 {
    TVAR_IDS.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::thread;

    #[test]
    fn tick_is_monotonic() {
        let a = tick();
        let b = tick();
        let c = tick();
        assert!(a < b && b < c);
        assert!(now() >= c);
    }

    #[test]
    fn now_never_exceeds_latest_tick() {
        let latest = tick();
        assert!(now() >= latest);
    }

    #[test]
    fn txn_ids_are_unique_across_threads() {
        let handles: Vec<_> = (0..4)
            .map(|_| thread::spawn(|| (0..1000).map(|_| next_txn_id()).collect::<Vec<_>>()))
            .collect();
        let mut seen = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert_ne!(id, 0, "transaction id 0 is reserved");
                assert!(seen.insert(id), "duplicate transaction id {id}");
            }
        }
    }

    #[test]
    fn tvar_ids_are_unique_and_nonzero() {
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            let id = next_tvar_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn advance_past_raises_but_never_lowers_the_clock() {
        let base = tick();
        advance_past(base + 10);
        assert!(now() >= base + 10);
        advance_past(base); // Stale demand must not move the clock backwards.
        assert!(now() >= base + 10);
    }

    #[test]
    fn ticks_are_unique_across_threads() {
        let handles: Vec<_> = (0..4)
            .map(|_| thread::spawn(|| (0..1000).map(|_| tick()).collect::<Vec<_>>()))
            .collect();
        let mut seen = HashSet::new();
        for h in handles {
            for ts in h.join().unwrap() {
                assert!(seen.insert(ts), "duplicate commit timestamp {ts}");
            }
        }
    }
}
