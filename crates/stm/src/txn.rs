//! The transaction object: read/write sets, validation and the commit
//! protocol.
//!
//! The read and write sets live in a pooled, per-thread `TxnScratch`
//! (see the private `scratch` module) borrowed for the duration of one
//! attempt: the
//! steady-state path touches only recycled buffers and performs no heap
//! allocation.

use std::any::Any;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::clock;
use crate::config::ClockMode;
use crate::contention::{Conflict, ConflictKind, ContentionManager, Resolution};
use crate::error::{AbortCause, TxError};
use crate::registry::{self, TxnShared};
use crate::scratch::{ReadSet, TxnScratch, WriteSet};
use crate::stm::Stm;
use crate::tvar::{TVar, TVarCore, TVarDyn, NO_OWNER};

/// Type-erased write-set entry. Also the unit the multi-version lane stores
/// in its block memory (see [`crate::mv`]), which is why it can hand out the
/// buffered value type-erased for cross-transaction multi-version reads.
pub(crate) trait WriteEntryDyn: Send {
    fn var(&self) -> &dyn TVarDyn;
    fn var_arc(&self) -> Arc<dyn TVarDyn>;
    fn publish(&self, commit_ts: u64);
    /// The buffered value as a type-erased shared snapshot.
    fn value_any(&self) -> Arc<dyn Any + Send + Sync>;
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
    /// Drop the held references, leaving a vacant shell that a pool (see
    /// the private `scratch` module) can refill for a later write of the same type.
    fn reset(&mut self);
    /// True when [`WriteEntryDyn::reset`] has vacated this entry.
    fn is_vacant(&self) -> bool;
}

/// Typed write-set entry holding the buffered value for one variable.
///
/// The fields are `Option` only so a recycled entry box can be *vacated*
/// (both `None`, holding no stale references) while parked on a free list;
/// a live entry in a write set always has both populated. The niche
/// optimization makes the options free of space cost.
pub(crate) struct TypedWrite<T: Send + Sync + 'static> {
    pub(crate) core: Option<Arc<TVarCore<T>>>,
    pub(crate) value: Option<Arc<T>>,
}

impl<T: Send + Sync + 'static> TypedWrite<T> {
    pub(crate) fn value(&self) -> &Arc<T> {
        self.value.as_ref().expect("vacated write-set entry")
    }

    fn core(&self) -> &Arc<TVarCore<T>> {
        self.core.as_ref().expect("vacated write-set entry")
    }
}

impl<T: Send + Sync + 'static> WriteEntryDyn for TypedWrite<T> {
    fn var(&self) -> &dyn TVarDyn {
        self.core().as_ref()
    }
    fn var_arc(&self) -> Arc<dyn TVarDyn> {
        Arc::clone(self.core()) as Arc<dyn TVarDyn>
    }
    fn publish(&self, commit_ts: u64) {
        self.core().publish(Arc::clone(self.value()), commit_ts);
    }
    fn value_any(&self) -> Arc<dyn Any + Send + Sync> {
        Arc::clone(self.value()) as Arc<dyn Any + Send + Sync>
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn reset(&mut self) {
        self.core = None;
        self.value = None;
    }
    fn is_vacant(&self) -> bool {
        self.core.is_none() && self.value.is_none()
    }
}

/// Summary of a committed attempt, consumed by [`crate::Stm`] for statistics.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CommitInfo {
    pub reads: u64,
    pub writes: u64,
    pub read_only: bool,
    /// True when the attempt was *recorded* into an MV block session instead
    /// of publishing: the block commits (and counts) it later, so the retry
    /// loop must skip the per-commit statistics.
    pub mv_deferred: bool,
}

/// An in-flight transaction attempt.
///
/// A `Transaction` is handed to the closure passed to
/// [`crate::Stm::atomically`]; user code interacts with it through
/// [`read`](Transaction::read), [`write`](Transaction::write) and the
/// convenience combinators. Conflicts surface as [`TxError`] values which the
/// closure normally propagates with `?`, causing the attempt to be retried.
pub struct Transaction<'a> {
    stm: &'a Stm,
    id: u64,
    /// Snapshot timestamp: all reads are consistent as of this clock value
    /// (extended on demand, TL2-style).
    read_version: u64,
    /// Timestamp of the first attempt of this logical transaction.
    start_ts: u64,
    /// Pooled read/write-set storage, recycled across attempts and
    /// transactions by the retry loop in [`crate::Stm`].
    scratch: &'a mut TxnScratch,
    cm: &'a mut dyn ContentionManager,
    shared: &'a TxnShared,
    /// Whether a durability sink was attached when the transaction started,
    /// cached as a plain bool so volatile-mode commits skip the
    /// `OnceLock<Arc<dyn DurabilitySink>>` lookups on the commit path.
    /// (Attachment is permanent, so a stale `false` can only happen for
    /// transactions already in flight during the attach — the same window
    /// the `OnceLock` itself allows.)
    durability_attached: bool,
}

impl<'a> Transaction<'a> {
    pub(crate) fn new(
        stm: &'a Stm,
        id: u64,
        start_ts: u64,
        scratch: &'a mut TxnScratch,
        cm: &'a mut dyn ContentionManager,
        shared: &'a TxnShared,
        durability_attached: bool,
    ) -> Self {
        debug_assert!(scratch.is_clear(), "attempt must start from clear scratch");
        Transaction {
            stm,
            id,
            read_version: clock::now(),
            start_ts,
            scratch,
            cm,
            shared,
            durability_attached,
        }
    }

    /// The identifier of this (logical) transaction.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of distinct variables read so far.
    pub fn reads(&self) -> usize {
        self.scratch.reads.len()
    }

    /// Number of distinct variables written so far.
    pub fn writes(&self) -> usize {
        self.scratch.writes.len()
    }

    /// Read a transactional variable.
    ///
    /// Returns the value this transaction should observe: the buffered value
    /// if the transaction has already written the variable, otherwise a
    /// committed snapshot consistent with every other read performed so far.
    pub fn read<T: Send + Sync + 'static>(&mut self, var: &TVar<T>) -> Result<Arc<T>, TxError> {
        // Read-your-own-writes.
        if let Some(entry) = self.scratch.writes.get(var.id()) {
            let typed = entry
                .as_any()
                .downcast_ref::<TypedWrite<T>>()
                .expect("write-set entry type mismatch for TVar id");
            return Ok(Arc::clone(typed.value()));
        }

        // Multi-version lane: inside an MV block, storage reads resolve
        // against the block's multi-version memory (lower transactions'
        // writes, then the shared pre-block base snapshot) and record a
        // dependency instead of validating against the live clock.
        if crate::mv::session::is_active() {
            return crate::mv::session::read_active(var);
        }

        self.read_committed(var)
    }

    /// Read a variable and apply `f` to the value **by reference**.
    ///
    /// Equivalent to [`read`](Transaction::read) followed by a borrow, but
    /// without handing an extra `Arc` clone across the call boundary: the
    /// read-your-own-writes path borrows straight from the write set, so
    /// `read_cloned` and friends touch no reference counts they do not need.
    pub fn read_with<T, R>(&mut self, var: &TVar<T>, f: impl FnOnce(&T) -> R) -> Result<R, TxError>
    where
        T: Send + Sync + 'static,
    {
        if let Some(entry) = self.scratch.writes.get(var.id()) {
            let typed = entry
                .as_any()
                .downcast_ref::<TypedWrite<T>>()
                .expect("write-set entry type mismatch for TVar id");
            return Ok(f(typed.value()));
        }
        if crate::mv::session::is_active() {
            return crate::mv::session::read_active(var).map(|value| f(&value));
        }
        let value = self.read_committed(var)?;
        Ok(f(&value))
    }

    /// The committed-snapshot read path (no write-set hit, no MV lane).
    fn read_committed<T: Send + Sync + 'static>(
        &mut self,
        var: &TVar<T>,
    ) -> Result<Arc<T>, TxError> {
        let id = var.id();
        let core = var.core();
        let mut attempt: u32 = 0;
        loop {
            if let Some((value, version)) = core.consistent_snapshot() {
                if version > self.read_version {
                    self.extend_snapshot()?;
                }
                match self.scratch.reads.get(id) {
                    Some(prev) if prev.version != version => {
                        // The variable changed between two reads inside the
                        // same transaction: the snapshot is broken.
                        return Err(TxError::Conflict(AbortCause::ReadValidation));
                    }
                    Some(_) => {}
                    None => {
                        self.scratch.reads.insert(
                            id,
                            Arc::clone(core) as Arc<dyn TVarDyn>,
                            version,
                        );
                        self.record_open();
                    }
                }
                return Ok(value);
            }

            // The variable is owned by a committing transaction (or the
            // version moved under us). Consult the contention manager.
            let owner = core.owner();
            if owner == NO_OWNER || owner == self.id {
                // Transient race: the committer finished between our checks.
                std::hint::spin_loop();
                continue;
            }
            attempt += 1;
            match self.resolve_conflict(ConflictKind::Read, owner, attempt) {
                Resolution::Retry => continue,
                Resolution::Wait(d) => {
                    self.backoff(d);
                    continue;
                }
                Resolution::Abort => {
                    return Err(TxError::ContentionManager(AbortCause::ReadOwned));
                }
            }
        }
    }

    /// Read a variable and return a clone of the value (convenience for
    /// small `Clone` types).
    pub fn read_cloned<T: Clone + Send + Sync + 'static>(
        &mut self,
        var: &TVar<T>,
    ) -> Result<T, TxError> {
        self.read_with(var, T::clone)
    }

    /// Buffer a write of `value` to `var`. The write becomes visible to other
    /// transactions only if this transaction commits.
    pub fn write<T: Send + Sync + 'static>(
        &mut self,
        var: &TVar<T>,
        value: T,
    ) -> Result<(), TxError> {
        self.write_arc(var, Arc::new(value))
    }

    /// Buffer a write of an already-shared snapshot to `var`.
    pub fn write_arc<T: Send + Sync + 'static>(
        &mut self,
        var: &TVar<T>,
        value: Arc<T>,
    ) -> Result<(), TxError> {
        let id = var.id();
        if let Some(entry) = self.scratch.writes.get_mut(id) {
            let typed = entry
                .as_any_mut()
                .downcast_mut::<TypedWrite<T>>()
                .expect("write-set entry type mismatch for TVar id");
            typed.value = Some(value);
        } else {
            self.scratch
                .writes
                .insert_typed(id, Arc::clone(var.core()), value);
            self.record_open();
        }
        Ok(())
    }

    /// Read–modify–write convenience: applies `f` to the current value and
    /// writes the result.
    pub fn modify<T, F>(&mut self, var: &TVar<T>, f: F) -> Result<(), TxError>
    where
        T: Send + Sync + 'static,
        F: FnOnce(&T) -> T,
    {
        let current = self.read(var)?;
        self.write(var, f(&current))
    }

    /// Request that the whole atomic block be retried from scratch.
    ///
    /// Typically used when a condition the transaction waits for does not
    /// hold (e.g. popping from an empty transactional stack).
    pub fn retry<R>(&self) -> Result<R, TxError> {
        Err(TxError::ExplicitRetry)
    }

    /// Try to advance the snapshot timestamp to "now", revalidating every
    /// variable read so far.
    fn extend_snapshot(&mut self) -> Result<(), TxError> {
        let target = clock::now();
        for entry in self.scratch.reads.iter() {
            let owner = entry.var.dyn_owner();
            if entry.var.dyn_version() != entry.version || (owner != NO_OWNER && owner != self.id) {
                return Err(TxError::Conflict(AbortCause::ReadValidation));
            }
        }
        self.read_version = target;
        Ok(())
    }

    fn record_open(&mut self) {
        self.cm.on_open();
        self.shared.set_priority(self.cm.priority());
    }

    fn resolve_conflict(&mut self, kind: ConflictKind, enemy: u64, attempt: u32) -> Resolution {
        resolve_conflict_with(&mut *self.cm, self.start_ts, kind, enemy, attempt)
    }

    fn backoff(&self, duration: Duration) {
        self.stm.stats_ref().record_backoff();
        pause(duration);
    }

    /// Attempt to commit the transaction.
    pub(crate) fn commit(self) -> Result<CommitInfo, TxError> {
        // Destructure so the write set (mutable: it is sorted, and the MV
        // lane drains it) and the contention manager can be borrowed
        // independently through the commit protocol.
        let Transaction {
            stm,
            id,
            read_version: _,
            start_ts,
            scratch,
            cm,
            shared: _,
            durability_attached,
        } = self;
        let reads = &scratch.reads;
        let writes = &mut scratch.writes;

        let info = CommitInfo {
            reads: reads.len() as u64,
            writes: writes.len() as u64,
            read_only: writes.is_empty(),
            mv_deferred: false,
        };

        // Multi-version lane: record the write set (and the staged redo
        // payload) into the block session instead of publishing. The block
        // validates, possibly re-executes, and publishes the whole batch as
        // one composite commit with a deterministic order.
        if crate::mv::session::is_active() {
            let payload = if durability_attached && !writes.is_empty() {
                crate::durable::take_pending_payload()
            } else {
                None
            };
            crate::mv::session::record_active(writes, payload);
            return Ok(CommitInfo {
                mv_deferred: true,
                ..info
            });
        }

        if writes.is_empty() {
            if !stm.config().read_only_fast_path {
                validate_reads(reads, id)?;
            }
            // Read-only transactions are serializable at their snapshot
            // timestamp: every read was validated (and extended) as it was
            // performed.
            return Ok(info);
        }

        // Phase 1: acquire ownership of the write set in canonical order
        // (ascending TVar id — the process-wide canonical order, which
        // prevents deadlock between concurrent committers).
        writes.sort_canonical();
        let count = writes.len();
        let mut acquired = 0usize;
        for rank in 0..count {
            let mut attempt: u32 = 0;
            loop {
                let var = writes.ranked(rank).var();
                if var.dyn_try_acquire(id) {
                    acquired = rank + 1;
                    break;
                }
                let owner = var.dyn_owner();
                if owner == NO_OWNER || owner == id {
                    std::hint::spin_loop();
                    continue;
                }
                attempt += 1;
                match resolve_conflict_with(cm, start_ts, ConflictKind::Acquire, owner, attempt) {
                    Resolution::Retry => continue,
                    Resolution::Wait(d) => {
                        stm.stats_ref().record_backoff();
                        pause(d);
                        continue;
                    }
                    Resolution::Abort => {
                        release_ranked(writes, acquired, id);
                        return Err(TxError::ContentionManager(AbortCause::CommitAcquire));
                    }
                }
            }
        }

        // Phase 2: validate the read set now that the write set is locked.
        if let Err(e) = validate_reads(reads, id) {
            release_ranked(writes, acquired, id);
            return Err(e);
        }

        // Phase 3: publish under a fresh commit timestamp, then release.
        //
        // Whatever the clock discipline, the stamp must strictly exceed every
        // written variable's current version (stable while we own them):
        // version equality is what read validation uses to pin an exact
        // committed value, so a re-used stamp would make a replacement
        // invisible to concurrent readers. Under the lazy (GV5-style)
        // discipline this max is also what keeps repeated commits to the
        // same variable off the shared clock entirely; under GV1 the ticked
        // stamp already exceeds it unless a lazy-mode runtime sharing these
        // variables stamped ahead of the clock.
        let watermark = writes
            .iter()
            .map(|(_, entry)| entry.var().dyn_version())
            .max()
            .unwrap_or(0);
        let commit_ts = match stm.config().clock_mode {
            ClockMode::Ticked => clock::tick().max(watermark + 1),
            ClockMode::Lazy => (clock::now() + 1).max(watermark + 1),
        };
        for (_, entry) in writes.iter() {
            entry.publish(commit_ts);
        }
        // Durability hook: hand the staged payload (if any) to the sink
        // *before* releasing ownership, so log order respects dependency
        // order — a dependent transaction cannot read an owned variable,
        // hence cannot log ahead of this one. The enqueue is cheap (no
        // I/O); the fsync wait happens below, after release. Volatile-mode
        // commits skip the sink lookups entirely via the cached bool.
        let durable_ticket = if durability_attached {
            match stm.stats_ref().durability_sink() {
                Some(sink) => crate::durable::take_pending_payload().map(|payload| {
                    let ticket = sink.log_commit(&payload);
                    // The sink copied what it needs; the buffer goes back to
                    // the pool for the next producer.
                    crate::durable::recycle_payload(payload);
                    ticket
                }),
                None => None,
            }
        } else {
            None
        };
        for (_, entry) in writes.iter() {
            entry.var().dyn_release(id);
        }
        if let Some(ticket) = durable_ticket {
            if let Some(sink) = stm.stats_ref().durability_sink() {
                sink.wait_durable(ticket);
            }
        }
        Ok(info)
    }
}

/// Consult the contention manager about a conflict (free function so the
/// commit path can borrow the write set and the manager independently).
fn resolve_conflict_with(
    cm: &mut dyn ContentionManager,
    my_start_ts: u64,
    kind: ConflictKind,
    enemy: u64,
    attempt: u32,
) -> Resolution {
    let conflict = Conflict {
        kind,
        enemy,
        enemy_priority: registry::priority_of(enemy),
        enemy_start_ts: registry::start_ts_of(enemy),
        attempt,
        my_start_ts,
    };
    cm.on_conflict(&conflict)
}

/// Commit-time read-set validation: every read variable must still be at its
/// recorded version and unowned (or owned by us).
fn validate_reads(reads: &ReadSet, me: u64) -> Result<(), TxError> {
    for entry in reads.iter() {
        let owner = entry.var.dyn_owner();
        if entry.var.dyn_version() != entry.version || (owner != NO_OWNER && owner != me) {
            return Err(TxError::Conflict(AbortCause::CommitValidation));
        }
    }
    Ok(())
}

/// Release ownership of the first `count` write-set entries (in canonical
/// order), used when abandoning a partially acquired commit.
fn release_ranked(writes: &WriteSet, count: usize, me: u64) {
    for rank in 0..count {
        writes.ranked(rank).var().dyn_release(me);
    }
}

/// Sleep-or-spin for approximately `duration`.
///
/// Sub-30µs waits are busy-spun (with scheduler yields) because OS sleep
/// granularity would otherwise turn microsecond backoffs into millisecond
/// stalls; longer waits use a real sleep so single-CPU hosts let the enemy
/// transaction run.
pub(crate) fn pause(duration: Duration) {
    if duration.is_zero() {
        std::thread::yield_now();
        return;
    }
    if duration < Duration::from_micros(30) {
        let start = Instant::now();
        while start.elapsed() < duration {
            std::hint::spin_loop();
            std::thread::yield_now();
        }
    } else {
        std::thread::sleep(duration);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StmConfig;
    use crate::stm::Stm;

    #[test]
    fn pause_returns_promptly_for_zero() {
        let start = Instant::now();
        pause(Duration::ZERO);
        assert!(start.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn pause_waits_at_least_roughly_the_duration_for_long_waits() {
        let start = Instant::now();
        pause(Duration::from_millis(2));
        assert!(start.elapsed() >= Duration::from_millis(1));
    }

    #[test]
    fn read_your_own_writes() {
        let stm = Stm::default();
        let v = TVar::new(1u32);
        stm.atomically(|tx| {
            tx.write(&v, 5)?;
            assert_eq!(*tx.read(&v)?, 5);
            tx.write(&v, 6)?;
            assert_eq!(*tx.read(&v)?, 6);
            Ok(())
        });
        assert_eq!(*v.load(), 6);
    }

    #[test]
    fn read_with_borrows_buffered_and_committed_values() {
        let stm = Stm::default();
        let v = TVar::new(String::from("committed"));
        stm.atomically(|tx| {
            // Committed-snapshot path.
            let len = tx.read_with(&v, |s| s.len())?;
            assert_eq!(len, "committed".len());
            // Read-your-own-writes path borrows straight from the write set.
            tx.write(&v, String::from("buffered"))?;
            let first = tx.read_with(&v, |s| s.chars().next())?;
            assert_eq!(first, Some('b'));
            Ok(())
        });
        assert_eq!(*v.load(), "buffered");
    }

    #[test]
    fn modify_applies_function() {
        let stm = Stm::default();
        let v = TVar::new(10i64);
        stm.atomically(|tx| tx.modify(&v, |x| x * 3));
        assert_eq!(*v.load(), 30);
    }

    #[test]
    fn panicking_handler_returns_cleared_scratch_to_the_pool() {
        let stm = Stm::default();
        let v = TVar::new(0u32);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            stm.atomically(|tx| -> Result<u32, TxError> {
                tx.read(&v)?;
                tx.write(&v, 1)?;
                panic!("handler dies mid-transaction");
            })
        }));
        assert!(result.is_err(), "the panic propagates");
        // The unwind ran the scratch guard's drop: no read entry, write
        // entry or stale Arc reference may survive into the pool.
        assert!(crate::scratch::pooled_scratch_is_clear());
        // The uncommitted write vanished and this thread's STM still works.
        assert_eq!(stm.atomically(|tx| tx.read(&v).map(|x| *x)), 0);
        assert!(crate::scratch::pooled_scratch_is_clear());
    }

    #[test]
    fn repeatedly_aborting_transaction_leaves_the_pool_clear() {
        let stm = Stm::default();
        let v = TVar::new(0u32);
        let attempts = std::cell::Cell::new(0u32);
        let seen = stm.atomically(|tx| {
            let seen = *tx.read(&v)?;
            let attempt = attempts.get();
            attempts.set(attempt + 1);
            if attempt < 3 {
                // Scripted conflict: an inner transaction (which runs on a
                // fresh scratch — the outer one is checked out) bumps the
                // variable this attempt already read, so the outer commit
                // fails validation and retries on recycled scratch.
                stm.atomically(|inner| inner.modify(&v, |x| x + 1));
            }
            tx.write(&v, seen + 10)?;
            Ok(seen)
        });
        assert!(
            attempts.get() >= 4,
            "three scripted conflicts force retries, got {}",
            attempts.get()
        );
        assert_eq!(seen + 10, stm.read_now(&v));
        assert!(crate::scratch::pooled_scratch_is_clear());
    }

    #[test]
    fn footprint_counts_distinct_variables() {
        let stm = Stm::default();
        let a = TVar::new(0u8);
        let b = TVar::new(0u8);
        let (_, report) = stm.atomically_reporting(|tx| {
            tx.read(&a)?;
            tx.read(&a)?;
            tx.read(&b)?;
            tx.write(&b, 1)?;
            Ok(())
        });
        assert_eq!(report.reads, 2);
        assert_eq!(report.writes, 1);
        assert!(!report.read_only);
    }

    #[test]
    fn read_only_transactions_are_reported_as_such() {
        let stm = Stm::new(StmConfig::default());
        let a = TVar::new(3u32);
        let (value, report) = stm.atomically_reporting(|tx| tx.read_cloned(&a));
        assert_eq!(value, 3);
        assert!(report.read_only);
        assert_eq!(report.writes, 0);
    }

    #[test]
    fn writes_are_invisible_until_commit() {
        let stm = Stm::default();
        let v = TVar::new(0u32);
        stm.atomically(|tx| {
            tx.write(&v, 99)?;
            // The committed value is still the old one while we are inside
            // the transaction.
            assert_eq!(*v.load(), 0);
            Ok(())
        });
        assert_eq!(*v.load(), 99);
    }
}
