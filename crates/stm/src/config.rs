//! Runtime configuration for an [`crate::Stm`] instance.

use std::time::Duration;

/// Which contention-management policy to instantiate for each transaction.
///
/// The paper's experiments use **Polka** (Scherer & Scott, PODC'05), which
/// combines randomized exponential backoff with a priority-accumulation
/// mechanism that favours transactions in which the system has already
/// invested significant work. The remaining policies are the standard DSTM
/// suite, adapted to a commit-time-locking STM (the losing transaction
/// restarts itself instead of aborting its enemy — see the crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CmKind {
    /// Randomized exponential backoff + priority accumulation (paper default).
    #[default]
    Polka,
    /// Priority accumulation retained across aborts; wait as many rounds as
    /// the priority deficit before giving up.
    Karma,
    /// Fixed number of randomized exponential backoff rounds.
    Polite,
    /// Never wait: restart immediately on any conflict.
    Aggressive,
    /// Older transaction (smaller start timestamp) insists; younger yields.
    Timestamp,
}

impl CmKind {
    /// All built-in policies (useful for sweeps/ablations).
    pub const ALL: [CmKind; 5] = [
        CmKind::Polka,
        CmKind::Karma,
        CmKind::Polite,
        CmKind::Aggressive,
        CmKind::Timestamp,
    ];

    /// Human-readable policy name (matches the literature).
    pub fn name(&self) -> &'static str {
        match self {
            CmKind::Polka => "Polka",
            CmKind::Karma => "Karma",
            CmKind::Polite => "Polite",
            CmKind::Aggressive => "Aggressive",
            CmKind::Timestamp => "Timestamp",
        }
    }
}

impl std::fmt::Display for CmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for CmKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "polka" => Ok(CmKind::Polka),
            "karma" => Ok(CmKind::Karma),
            "polite" => Ok(CmKind::Polite),
            "aggressive" => Ok(CmKind::Aggressive),
            "timestamp" | "greedy" => Ok(CmKind::Timestamp),
            other => Err(format!("unknown contention manager '{other}'")),
        }
    }
}

/// Which commit-timestamp discipline the runtime uses (see [`crate::clock`]).
///
/// The clock itself is process-wide; this knob only selects how *this*
/// runtime's writer commits obtain their stamps. Mixing modes across
/// runtimes that share [`crate::TVar`]s is safe — both disciplines stamp
/// strictly past a variable's current version, so per-variable stamps never
/// regress and snapshot validation (which compares stamps for equality, not
/// global order) is unaffected. The practical caveats of mixing are
/// performance-shaped, not correctness-shaped: a `Ticked` runtime's commits
/// keep advancing the shared clock, which erodes the `Lazy` runtime's
/// zero-shared-write benefit, and `Lazy` stamps running ahead of the clock
/// cause `Ticked` readers to take the (sound, but slower) snapshot-extension
/// path more often.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ClockMode {
    /// GV1: every writer commit performs a `fetch_add` on the global clock
    /// and stamps with the unique result (the classic TL2 discipline).
    Ticked,
    /// GV5-style (default): writers stamp with `now() + 1` (or one past the
    /// variable's current version, whichever is larger) without advancing
    /// the clock; the clock is bumped only on validation-failure demand.
    /// Disjoint-key commits perform zero shared-clock writes.
    #[default]
    Lazy,
}

impl ClockMode {
    /// Human-readable mode name.
    pub fn name(&self) -> &'static str {
        match self {
            ClockMode::Ticked => "gv1-ticked",
            ClockMode::Lazy => "gv5-lazy",
        }
    }
}

impl std::fmt::Display for ClockMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of an [`crate::Stm`] runtime.
#[derive(Debug, Clone)]
pub struct StmConfig {
    /// Contention-management policy used for new transactions.
    pub contention_manager: CmKind,
    /// Maximum number of attempts before [`crate::Stm::try_atomically`]
    /// reports failure. `None` means retry forever (the behaviour of
    /// [`crate::Stm::atomically`]).
    pub max_attempts: Option<u64>,
    /// Base delay for exponential backoff decisions made by contention
    /// managers.
    pub backoff_base: Duration,
    /// Upper bound for a single backoff wait.
    pub backoff_cap: Duration,
    /// Number of busy-wait spins performed before a backoff falls back to
    /// yielding/sleeping. Tuned low because the development host may be a
    /// single hardware thread.
    pub spin_limit: u32,
    /// Whether read-only transactions skip commit-time work entirely
    /// (they are serializable at their snapshot timestamp).
    pub read_only_fast_path: bool,
    /// Commit-timestamp discipline (see [`ClockMode`]).
    pub clock_mode: ClockMode,
    /// Number of per-thread shards the statistics counters are striped over
    /// (rounded up to a power of two). `0` selects the default
    /// ([`crate::striped::DEFAULT_SHARDS`]); `1` recreates the fully shared
    /// counter block, which the commit-path microbench uses as its
    /// contention baseline.
    pub stats_stripes: usize,
}

impl Default for StmConfig {
    fn default() -> Self {
        StmConfig {
            contention_manager: CmKind::Polka,
            max_attempts: None,
            backoff_base: Duration::from_micros(2),
            backoff_cap: Duration::from_millis(2),
            spin_limit: 64,
            read_only_fast_path: true,
            clock_mode: ClockMode::default(),
            stats_stripes: 0,
        }
    }
}

impl StmConfig {
    /// Start from the defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Select the contention-management policy.
    pub fn with_contention_manager(mut self, kind: CmKind) -> Self {
        self.contention_manager = kind;
        self
    }

    /// Bound the number of attempts made by `try_atomically`.
    pub fn with_max_attempts(mut self, attempts: u64) -> Self {
        self.max_attempts = Some(attempts);
        self
    }

    /// Set the exponential-backoff base delay.
    pub fn with_backoff_base(mut self, base: Duration) -> Self {
        self.backoff_base = base;
        self
    }

    /// Set the exponential-backoff cap.
    pub fn with_backoff_cap(mut self, cap: Duration) -> Self {
        self.backoff_cap = cap;
        self
    }

    /// Enable or disable the read-only commit fast path.
    pub fn with_read_only_fast_path(mut self, enabled: bool) -> Self {
        self.read_only_fast_path = enabled;
        self
    }

    /// Select the commit-timestamp discipline.
    pub fn with_clock_mode(mut self, mode: ClockMode) -> Self {
        self.clock_mode = mode;
        self
    }

    /// Set the statistics shard count (`0` = default, `1` = fully shared).
    pub fn with_stats_stripes(mut self, stripes: usize) -> Self {
        self.stats_stripes = stripes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    #[test]
    fn default_uses_polka() {
        assert_eq!(StmConfig::default().contention_manager, CmKind::Polka);
        assert_eq!(CmKind::default(), CmKind::Polka);
    }

    #[test]
    fn builder_methods_compose() {
        let cfg = StmConfig::new()
            .with_contention_manager(CmKind::Karma)
            .with_max_attempts(5)
            .with_backoff_base(Duration::from_micros(10))
            .with_backoff_cap(Duration::from_millis(1))
            .with_read_only_fast_path(false)
            .with_clock_mode(ClockMode::Ticked)
            .with_stats_stripes(1);
        assert_eq!(cfg.contention_manager, CmKind::Karma);
        assert_eq!(cfg.max_attempts, Some(5));
        assert_eq!(cfg.backoff_base, Duration::from_micros(10));
        assert_eq!(cfg.backoff_cap, Duration::from_millis(1));
        assert!(!cfg.read_only_fast_path);
        assert_eq!(cfg.clock_mode, ClockMode::Ticked);
        assert_eq!(cfg.stats_stripes, 1);
    }

    #[test]
    fn lazy_clock_is_the_default() {
        assert_eq!(StmConfig::default().clock_mode, ClockMode::Lazy);
        assert_eq!(ClockMode::default(), ClockMode::Lazy);
        assert_eq!(StmConfig::default().stats_stripes, 0);
    }

    #[test]
    fn clock_mode_names_are_stable() {
        assert_eq!(ClockMode::Ticked.to_string(), "gv1-ticked");
        assert_eq!(ClockMode::Lazy.to_string(), "gv5-lazy");
    }

    #[test]
    fn cm_kind_round_trips_through_strings() {
        for kind in CmKind::ALL {
            let parsed = CmKind::from_str(&kind.name().to_lowercase()).unwrap();
            assert_eq!(parsed, kind);
        }
        assert!(CmKind::from_str("nonsense").is_err());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(CmKind::Polka.to_string(), "Polka");
        assert_eq!(CmKind::Timestamp.to_string(), "Timestamp");
    }
}
