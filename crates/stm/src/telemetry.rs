//! Key-range contention telemetry — the STM side of the adaptation plane.
//!
//! The paper's executor adapts on key *frequency* alone; "On the Cost of
//! Concurrency in Transactional Memory" argues the quantity worth optimizing
//! is abort/contention cost. This module lets the STM attribute commit and
//! abort counts to ranges of the transaction-key space so the scheduler's
//! drift detector can re-partition on *where contention happens*, not only
//! on where keys land:
//!
//! * Executors wrap each task in [`with_task_key`], which parks the task's
//!   transaction key in a thread-local scope.
//! * A [`KeyRangeTelemetry`] attached to the runtime's [`crate::StmStats`]
//!   (see [`crate::StmStats::attach_key_telemetry`]) is fed by the commit
//!   path: every committed transaction records one commit and its failed
//!   attempts into the bucket covering the scoped key.
//! * Consumers take [`KeyRangeTelemetry::snapshot`]s and diff them with
//!   [`KeyRangeSnapshot::since`] to obtain per-epoch deltas.
//!
//! Recording is two relaxed atomic increments per committed transaction
//! into the calling thread's *own* stripe of the bucket array (and nothing
//! at all when no telemetry is attached or no key is in scope). The bucket
//! layout is published through an atomic pointer rather than a lock, so the
//! hot path performs **zero** shared-line writes: no lock word, no shared
//! counters — each thread's increments stay on cache lines only it writes.
//! Snapshots aggregate the stripes lazily.
//!
//! Buckets are no longer forced to be equal-width: the boundary layout can
//! be replaced at run time with [`KeyRangeTelemetry::rebucket`], which the
//! adaptation plane drives from the observed key CDF — boundaries land at
//! the key-frequency quantiles, so every bucket covers roughly the same
//! traffic mass and abort attribution localizes hot ranges even on heavily
//! skewed key spaces (the ROADMAP's "abort attribution granularity" item).
//! A rebucket zeroes the counters (the old geometry's counts cannot be
//! redistributed); consumers that diff snapshots see one muted epoch and
//! then clean deltas under the new geometry. Retired layouts are kept alive
//! until the telemetry itself is dropped, so a recorder that races a
//! rebucket writes into the old (about-to-be-ignored) counters instead of
//! freed memory — the same "one muted epoch" contract, without a lock on
//! the hot path.

use std::cell::Cell;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::striped::{thread_stripe, CachePadded};

thread_local! {
    /// The transaction key of the task currently executing on this thread.
    static TASK_KEY: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Restores the previous scope key on drop, so nested scopes and panics
/// unwind cleanly.
struct ScopeGuard {
    previous: Option<u64>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        TASK_KEY.with(|slot| slot.set(self.previous));
    }
}

/// Run `f` with `key` as the current thread's task key: transactions
/// committed inside `f` are attributed to `key`'s bucket by any
/// [`KeyRangeTelemetry`] attached to the STM they run on. Scopes nest; the
/// previous key is restored when `f` returns (or panics).
pub fn with_task_key<R>(key: u64, f: impl FnOnce() -> R) -> R {
    let guard = ScopeGuard {
        previous: TASK_KEY.with(|slot| slot.replace(Some(key))),
    };
    let result = f();
    drop(guard);
    result
}

/// The task key currently in scope on this thread, if any.
pub fn current_task_key() -> Option<u64> {
    TASK_KEY.with(|slot| slot.get())
}

/// Per-bucket counters within one thread stripe. Unpadded: a stripe is
/// written by a single thread, so buckets within it cannot false-share.
#[derive(Debug, Default)]
struct BucketCounters {
    commits: AtomicU64,
    aborts: AtomicU64,
}

/// One thread-stripe of the bucket array. Each stripe's counters live in
/// their own allocation and the stripe headers are cache-line padded, so
/// two threads recording into different stripes never write the same line.
#[derive(Debug, Default)]
struct TelemetryStripe {
    buckets: Box<[BucketCounters]>,
}

/// Number of thread stripes per bucket layout (power of two; threads beyond
/// this share stripes round-robin, which costs scalability, never
/// correctness).
const TELEMETRY_STRIPES: usize = 16;

/// One bucket layout: `edges[i]` is the first key belonging to bucket
/// `i + 1` (the same convention the schedulers' partitions use), so bucket
/// lookup is a single `partition_point`. The counters are striped per
/// thread; logical bucket `b`'s count is the sum of `b` across stripes.
#[derive(Debug)]
struct BucketLayout {
    edges: Vec<u64>,
    stripes: Box<[CachePadded<TelemetryStripe>]>,
    bucket_count: usize,
}

impl BucketLayout {
    fn new(edges: Vec<u64>) -> Self {
        let bucket_count = edges.len() + 1;
        BucketLayout {
            edges,
            stripes: (0..TELEMETRY_STRIPES)
                .map(|_| {
                    CachePadded::new(TelemetryStripe {
                        buckets: (0..bucket_count)
                            .map(|_| BucketCounters::default())
                            .collect(),
                    })
                })
                .collect(),
            bucket_count,
        }
    }

    /// The calling thread's stripe.
    #[inline]
    fn local_stripe(&self) -> &TelemetryStripe {
        &self.stripes[thread_stripe() & (TELEMETRY_STRIPES - 1)]
    }

    /// Sum of `(commits, aborts)` for bucket `index` across all stripes.
    fn bucket_totals(&self, index: usize) -> (u64, u64) {
        self.stripes.iter().fold((0, 0), |(c, a), stripe| {
            let bucket = &stripe.buckets[index];
            (
                c + bucket.commits.load(Ordering::Relaxed),
                a + bucket.aborts.load(Ordering::Relaxed),
            )
        })
    }
}

/// Monotonic commit/abort counters bucketed over a contiguous key range.
///
/// [`KeyRangeTelemetry::new`] starts with equal-width buckets; the layout
/// can later be replaced with quantile-derived boundaries via
/// [`KeyRangeTelemetry::rebucket`] (see the module docs). Keys outside the
/// range are clamped into the first/last bucket (mirroring how the
/// schedulers clamp routing keys).
#[derive(Debug)]
pub struct KeyRangeTelemetry {
    min: u64,
    max: u64,
    /// The live layout, published via atomic pointer so the record path is
    /// lock-free. Always a valid pointer produced by `Box::into_raw`.
    current: AtomicPtr<BucketLayout>,
    /// Layouts replaced by [`KeyRangeTelemetry::rebucket`], kept alive until
    /// the telemetry is dropped so recorders that raced the swap write into
    /// real (merely ignored) memory. The boxes must stay boxed: racing
    /// recorders hold the heap address the swap retired, so the layout may
    /// never move. Rebuckets are adaptation-plane events — a handful per
    /// run — so this stays tiny.
    #[allow(clippy::vec_box)]
    retired: Mutex<Vec<Box<BucketLayout>>>,
}

impl KeyRangeTelemetry {
    /// Shared reference to the live layout.
    ///
    /// Safety of the dereference: `current` always holds a pointer from
    /// `Box::into_raw`; replaced layouts are moved to `retired` (not freed)
    /// and both are only dropped in `Drop`, which requires `&mut self` —
    /// so any layout observed through `&self` outlives the borrow.
    #[inline]
    fn layout(&self) -> &BucketLayout {
        unsafe { &*self.current.load(Ordering::Acquire) }
    }
}

impl Drop for KeyRangeTelemetry {
    fn drop(&mut self) {
        // Safety: the pointer came from `Box::into_raw` and `&mut self`
        // guarantees no concurrent reader still holds a reference.
        drop(unsafe { Box::from_raw(*self.current.get_mut()) });
    }
}

/// Default bucket count: coarse enough that per-epoch deltas are
/// statistically meaningful, fine enough to localize a hot range well below
/// one worker's share even at 16 workers.
pub const DEFAULT_TELEMETRY_BUCKETS: usize = 64;

impl KeyRangeTelemetry {
    /// Create zeroed telemetry over the inclusive key range `[min, max]`
    /// with `buckets` equal-width buckets (capped at the range width).
    ///
    /// # Panics
    /// Panics when `min > max` or `buckets` is zero.
    pub fn new(min: u64, max: u64, buckets: usize) -> Self {
        assert!(min <= max, "invalid key range: {min} > {max}");
        assert!(buckets > 0, "telemetry needs at least one bucket");
        let width = max - min + 1;
        let count = (buckets as u64).min(width) as usize;
        // Equal-width edges matching the historical floor-division mapping:
        // edge i is the first key of bucket i + 1.
        let edges = (1..count)
            .map(|index| bucket_range_of(min, max, count, index).0)
            .collect();
        KeyRangeTelemetry {
            min,
            max,
            current: AtomicPtr::new(Box::into_raw(Box::new(BucketLayout::new(edges)))),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// The inclusive key range this telemetry covers.
    pub fn bounds(&self) -> (u64, u64) {
        (self.min, self.max)
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.layout().bucket_count
    }

    /// Index of the bucket covering `key` (out-of-range keys clamp).
    pub fn bucket_of(&self, key: u64) -> usize {
        let key = key.clamp(self.min, self.max);
        let layout = self.layout();
        layout.edges.partition_point(|&edge| edge <= key)
    }

    /// Inclusive key range covered by bucket `index` (the exact preimage of
    /// [`KeyRangeTelemetry::bucket_of`]; an empty bucket — possible when
    /// quantile edges coincide — reports its degenerate single-key range).
    ///
    /// # Panics
    /// Panics when `index` is out of range.
    pub fn bucket_range(&self, index: usize) -> (u64, u64) {
        let layout = self.layout();
        assert!(index < layout.bucket_count, "bucket index out of range");
        range_from_edges(self.min, self.max, &layout.edges, index)
    }

    /// Replace the bucket layout with explicit boundaries (`edges[i]` = the
    /// first key of bucket `i + 1`, clamped into the key range and made
    /// non-decreasing) and **reset every counter to zero** — the old
    /// geometry's counts cannot be meaningfully redistributed. The
    /// adaptation plane calls this with key-CDF quantiles so each bucket
    /// covers roughly equal traffic mass.
    pub fn rebucket(&self, mut edges: Vec<u64>) {
        for edge in edges.iter_mut() {
            *edge = (*edge).clamp(self.min, self.max);
        }
        for index in 1..edges.len() {
            if edges[index] < edges[index - 1] {
                edges[index] = edges[index - 1];
            }
        }
        let replacement = Box::into_raw(Box::new(BucketLayout::new(edges)));
        let old = self.current.swap(replacement, Ordering::AcqRel);
        // Safety: `old` came from `Box::into_raw`; re-boxing it here only
        // moves ownership into the retired list (no deallocation), so
        // recorders that loaded it before the swap keep a valid target.
        self.retired.lock().push(unsafe { Box::from_raw(old) });
    }

    /// Record one committed transaction attributed to `key`: `commits`
    /// commit(s) and `aborts` failed attempts.
    ///
    /// Lock-free and stripe-local: the only writes are relaxed increments on
    /// the calling thread's own stripe. A record racing a
    /// [`KeyRangeTelemetry::rebucket`] may land in the retired layout and be
    /// ignored — indistinguishable from the counter reset the rebucket
    /// performs anyway.
    pub fn record(&self, key: u64, commits: u64, aborts: u64) {
        let key = key.clamp(self.min, self.max);
        let layout = self.layout();
        let index = layout.edges.partition_point(|&edge| edge <= key);
        let bucket = &layout.local_stripe().buckets[index];
        if commits > 0 {
            bucket.commits.fetch_add(commits, Ordering::Relaxed);
        }
        if aborts > 0 {
            bucket.aborts.fetch_add(aborts, Ordering::Relaxed);
        }
    }

    /// Capture the current per-bucket counters (and the bucket geometry
    /// they were counted under). Aggregation is lazy: the per-thread stripes
    /// are summed here, by the reader, not on the record path.
    pub fn snapshot(&self) -> KeyRangeSnapshot {
        let layout = self.layout();
        KeyRangeSnapshot {
            min: self.min,
            max: self.max,
            edges: layout.edges.clone(),
            buckets: (0..layout.bucket_count)
                .map(|index| layout.bucket_totals(index))
                .collect(),
        }
    }
}

/// Inclusive key range of bucket `index` under an explicit edge layout
/// (`edges[i]` = first key of bucket `i + 1`). Degenerate (empty) buckets
/// report a single-key range so midpoint math stays well defined.
fn range_from_edges(min: u64, max: u64, edges: &[u64], index: usize) -> (u64, u64) {
    let lo = if index == 0 { min } else { edges[index - 1] };
    let hi = if index == edges.len() {
        max
    } else {
        edges[index].saturating_sub(1).max(lo)
    };
    (lo, hi.max(lo))
}

/// Inclusive key range of bucket `index` when `[min, max]` is split into
/// `count` buckets by `bucket_of`'s floor division — the boundaries use
/// ceiling division so each range is exactly that mapping's preimage.
fn bucket_range_of(min: u64, max: u64, count: usize, index: usize) -> (u64, u64) {
    let width = max - min + 1;
    let count = count as u64;
    let index = index as u64;
    let lo = min + (index * width).div_ceil(count);
    let hi = if index + 1 == count {
        max
    } else {
        min + ((index + 1) * width).div_ceil(count) - 1
    };
    (lo, hi)
}

/// Point-in-time view of a [`KeyRangeTelemetry`]: one `(commits, aborts)`
/// pair per bucket, plus the bucket geometry the counts were recorded
/// under. Diff two snapshots with [`KeyRangeSnapshot::since`] to get an
/// epoch delta (same-geometry snapshots only — a
/// [`KeyRangeTelemetry::rebucket`] starts a fresh geometry with zeroed
/// counters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyRangeSnapshot {
    min: u64,
    max: u64,
    edges: Vec<u64>,
    buckets: Vec<(u64, u64)>,
}

impl KeyRangeSnapshot {
    /// The inclusive key range.
    pub fn bounds(&self) -> (u64, u64) {
        (self.min, self.max)
    }

    /// Per-bucket `(commits, aborts)` pairs, in key order.
    pub fn buckets(&self) -> &[(u64, u64)] {
        &self.buckets
    }

    /// The internal bucket boundaries (first key of each bucket after the
    /// first).
    pub fn edges(&self) -> &[u64] {
        &self.edges
    }

    /// Inclusive key range covered by bucket `index`.
    pub fn bucket_range(&self, index: usize) -> (u64, u64) {
        assert!(index < self.buckets.len(), "bucket index out of range");
        range_from_edges(self.min, self.max, &self.edges, index)
    }

    /// Total commits across all buckets.
    pub fn total_commits(&self) -> u64 {
        self.buckets.iter().map(|&(c, _)| c).sum()
    }

    /// Total aborted attempts across all buckets.
    pub fn total_aborts(&self) -> u64 {
        self.buckets.iter().map(|&(_, a)| a).sum()
    }

    /// Aborted attempts per committed transaction.
    pub fn contention_ratio(&self) -> f64 {
        let commits = self.total_commits();
        if commits == 0 {
            0.0
        } else {
            self.total_aborts() as f64 / commits as f64
        }
    }

    /// Bucket-wise difference (`self` taken after `earlier`).
    ///
    /// # Panics
    /// Panics when the snapshots have different geometry.
    pub fn since(&self, earlier: &KeyRangeSnapshot) -> KeyRangeSnapshot {
        assert_eq!(
            (self.min, self.max, &self.edges),
            (earlier.min, earlier.max, &earlier.edges),
            "snapshot geometry differs"
        );
        KeyRangeSnapshot {
            min: self.min,
            max: self.max,
            edges: self.edges.clone(),
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(&(c, a), &(ec, ea))| (c - ec, a - ea))
                .collect(),
        }
    }

    /// The key range with the most aborts, as `(lo, hi, aborts)` — `None`
    /// when no aborts were recorded.
    pub fn hottest_range(&self) -> Option<(u64, u64, u64)> {
        let (index, &(_, aborts)) = self
            .buckets
            .iter()
            .enumerate()
            .max_by_key(|&(_, &(_, a))| a)?;
        if aborts == 0 {
            return None;
        }
        let (lo, hi) = self.bucket_range(index);
        Some((lo, hi, aborts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_key_scopes_nest_and_restore() {
        assert_eq!(current_task_key(), None);
        let inner = with_task_key(7, || {
            assert_eq!(current_task_key(), Some(7));
            with_task_key(9, current_task_key)
        });
        assert_eq!(inner, Some(9));
        assert_eq!(current_task_key(), None);
    }

    #[test]
    fn records_land_in_the_covering_bucket() {
        let t = KeyRangeTelemetry::new(0, 99, 4);
        t.record(10, 1, 0);
        t.record(30, 1, 2);
        t.record(99, 1, 1);
        t.record(1_000, 1, 0); // clamps into the last bucket
        let snap = t.snapshot();
        assert_eq!(snap.buckets(), &[(1, 0), (1, 2), (0, 0), (2, 1)]);
        assert_eq!(snap.total_commits(), 4);
        assert_eq!(snap.total_aborts(), 3);
        assert!((snap.contention_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn bucket_ranges_tile_the_space() {
        let t = KeyRangeTelemetry::new(0, 99, 7);
        let mut covered = 0;
        for b in 0..t.buckets() {
            let (lo, hi) = t.bucket_range(b);
            assert!(lo <= hi);
            covered += hi - lo + 1;
            for key in lo..=hi {
                assert_eq!(t.bucket_of(key), b, "key {key}");
            }
        }
        assert_eq!(covered, 100);
    }

    #[test]
    fn since_yields_epoch_deltas_and_hottest_range() {
        let t = KeyRangeTelemetry::new(0, 63, 8);
        t.record(5, 10, 1);
        let epoch_start = t.snapshot();
        t.record(5, 5, 0);
        t.record(40, 3, 9);
        let delta = t.snapshot().since(&epoch_start);
        assert_eq!(delta.total_commits(), 8);
        assert_eq!(delta.total_aborts(), 9);
        let (lo, hi, aborts) = delta.hottest_range().expect("aborts recorded");
        assert!(lo <= 40 && 40 <= hi);
        assert_eq!(aborts, 9);
        assert_eq!(delta.since(&delta).hottest_range(), None);
    }

    #[test]
    fn bucket_count_is_capped_at_the_range_width() {
        let t = KeyRangeTelemetry::new(10, 12, 64);
        assert_eq!(t.buckets(), 3);
        assert_eq!(t.bounds(), (10, 12));
    }

    #[test]
    fn rebucket_installs_quantile_boundaries_and_resets_counters() {
        let t = KeyRangeTelemetry::new(0, 999, 4);
        t.record(10, 5, 2);
        assert_eq!(t.snapshot().total_commits(), 5);

        // 90% of traffic lives in [0, 99]: quantile-style edges pack three
        // buckets into the hot range and leave one for the cold tail.
        t.rebucket(vec![30, 60, 100]);
        assert_eq!(t.buckets(), 4);
        let snap = t.snapshot();
        assert_eq!(snap.total_commits(), 0, "rebucket must reset counters");
        assert_eq!(snap.edges(), &[30, 60, 100]);

        t.record(10, 1, 0);
        t.record(45, 1, 3);
        t.record(99, 1, 0);
        t.record(800, 1, 7);
        let snap = t.snapshot();
        assert_eq!(snap.buckets(), &[(1, 0), (1, 3), (1, 0), (1, 7)]);
        // Hot-range attribution is now three buckets wide instead of none.
        let (lo, hi, aborts) = snap.hottest_range().unwrap();
        assert_eq!((lo, hi, aborts), (100, 999, 7));
        assert_eq!(snap.bucket_range(0), (0, 29));
        assert_eq!(snap.bucket_range(1), (30, 59));
        assert_eq!(snap.bucket_range(2), (60, 99));
        // Ranges still form the preimage of bucket_of.
        for key in 0..1000u64 {
            let bucket = t.bucket_of(key);
            let (lo, hi) = t.bucket_range(bucket);
            assert!(key >= lo && key <= hi, "key {key} outside bucket {bucket}");
        }
    }

    #[test]
    fn rebucket_tolerates_degenerate_and_unsorted_edges() {
        let t = KeyRangeTelemetry::new(0, 99, 8);
        // Point-mass quantiles repeat and may come in clamped/unsorted.
        t.rebucket(vec![50, 50, 40, 1_000]);
        assert_eq!(t.buckets(), 5);
        let snap = t.snapshot();
        assert_eq!(snap.edges(), &[50, 50, 50, 99]);
        t.record(49, 1, 0);
        t.record(50, 1, 1);
        let snap = t.snapshot();
        assert_eq!(snap.buckets()[0], (1, 0));
        // The two empty middle buckets never receive records.
        assert_eq!(snap.buckets()[1], (0, 0));
        assert_eq!(snap.buckets()[2], (0, 0));
        assert_eq!(snap.buckets()[3], (1, 1));
        // Degenerate ranges stay well formed (lo <= hi).
        for index in 0..5 {
            let (lo, hi) = snap.bucket_range(index);
            assert!(lo <= hi, "bucket {index}: ({lo}, {hi})");
        }
    }

    #[test]
    #[should_panic(expected = "geometry differs")]
    fn since_rejects_cross_geometry_diffs() {
        let t = KeyRangeTelemetry::new(0, 99, 4);
        let before = t.snapshot();
        t.rebucket(vec![10, 20, 30]);
        let _ = t.snapshot().since(&before);
    }
}
