//! # katme-stm — software transactional memory substrate
//!
//! This crate is the Rust analogue of the Java dynamic software transactional
//! memory (DSTM) system of Herlihy, Luchangco, Moir and Scherer that the
//! KATME paper ("A Key-based Adaptive Transactional Memory Executor",
//! IPDPS 2007) uses as its execution substrate.
//!
//! > **Start with the [`katme`](../katme/index.html) facade crate.** Its
//! > `Katme::builder()` wires this STM together with the key-based executor,
//! > task queues and statistics, and re-exports the types below
//! > (`katme::{Stm, StmConfig, CmKind, TVar, ...}`). Depend on `katme-stm`
//! > directly only for standalone transactional-memory use.
//!
//! The programming model is the one the paper relies on: shared mutable state
//! lives in transactional variables ([`TVar`]), and arbitrary blocks of code
//! run atomically against them via [`Stm::atomically`]. Conflicting
//! transactions are detected at commit (and on inconsistent reads) and one of
//! them is retried, with the decision of *who waits and for how long*
//! delegated to a pluggable [`ContentionManager`] — including a port of the
//! **Polka** manager (randomized exponential backoff combined with priority
//! accumulation) used in the paper's experiments.
//!
//! ## Design
//!
//! The Java DSTM is object-based and obstruction-free: every transactional
//! object holds a `Locator` with an owner transaction and old/new object
//! versions, and any transaction may abort any other. Rust's ownership model
//! makes that shape awkward (shared mutable aliasing of object clones with
//! garbage-collected reclamation), so this crate uses the moral equivalent
//! with the same observable behaviour at the level the executor cares about:
//!
//! * [`TVar<T>`] is an object-granularity, clone-on-write transactional cell
//!   (a committed value is an immutable `Arc<T>` snapshot).
//! * Transactions buffer writes privately and validate reads against a
//!   per-variable version stamped from a global version clock (TL2-style).
//! * Commit acquires per-variable ownership in a canonical order, validates
//!   the read set, publishes the buffered values, and releases ownership.
//! * On every conflict the contention manager chooses between waiting
//!   (bounded, randomized-exponential backoff) and aborting the current
//!   attempt; priority accumulation mirrors Polka/Karma.
//!
//! ## Quick example
//!
//! ```
//! use katme_stm::{Stm, TVar};
//!
//! let stm = Stm::default();
//! let balance = TVar::new(100i64);
//!
//! let observed = stm.atomically(|tx| {
//!     let current = *tx.read(&balance)?;
//!     tx.write(&balance, current + 42)?;
//!     Ok(current)
//! });
//!
//! assert_eq!(observed, 100);
//! assert_eq!(stm.read_now(&balance), 142);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod clock;
pub mod config;
pub mod contention;
pub mod durable;
pub mod error;
pub mod mv;
pub mod registry;
mod scratch;
pub mod stats;
pub mod stm;
pub mod striped;
pub mod telemetry;
pub mod tvar;
pub mod txn;

pub use config::{ClockMode, CmKind, StmConfig};
pub use contention::{Conflict, ConflictKind, ContentionManager, Resolution};
pub use durable::{
    recycle_payload, recycled_payload, take_group_wait_nanos, with_durable_payload, DurabilitySink,
};
pub use error::{AbortCause, TxError};
pub use mv::{
    run_block, run_block_tasks, run_block_with, MvBlockOutcome, MvBlockReport, MvOp, MvTask,
};
pub use stats::{StmStats, StmStatsSnapshot, TxnReport};
pub use stm::Stm;
pub use striped::CachePadded;
pub use telemetry::{with_task_key, KeyRangeSnapshot, KeyRangeTelemetry};
pub use tvar::TVar;
pub use txn::Transaction;

/// Convenience prelude bringing the most commonly used items into scope.
pub mod prelude {
    pub use crate::{CmKind, Stm, StmConfig, TVar, Transaction, TxError};
}
