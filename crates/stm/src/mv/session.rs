//! Multi-version memory for one block: per-variable write versions keyed by
//! `(txn_idx, incarnation)`, shared base snapshots, and the per-transaction
//! dependency log that drives re-execution.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::TxError;
use crate::scratch::{self, WriteSet};
use crate::tvar::{TVar, TVarDyn, TVarId};
use crate::txn::WriteEntryDyn;

/// Identity of one execution of one block transaction: the transaction's
/// fixed position in the block plus how many times it has (re-)executed.
/// Dependencies are recorded against versions, so a re-execution invalidates
/// exactly the readers of the previous incarnation's writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Version {
    /// Position of the transaction in the block (the commit order).
    pub txn_idx: u32,
    /// Execution count of that transaction, starting at 0.
    pub incarnation: u32,
}

/// What one read resolved to, recorded for later validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReadDep {
    /// Resolved to the shared pre-block snapshot at this storage version.
    Base { version: u64 },
    /// Resolved to the write of a lower block transaction.
    Write { version: Version },
}

type ArcAny = Arc<dyn Any + Send + Sync>;

/// Shared pre-block snapshot of one variable: every block transaction that
/// falls through to storage observes the same `(value, version)` pair.
struct BaseCell {
    value: ArcAny,
    version: u64,
}

/// A multi-version entry: the write-set entry of one block transaction for
/// one variable, tagged with the incarnation that produced it. `estimate` is
/// set while the owning transaction re-executes, so readers resolving to it
/// are guaranteed to fail validation.
struct MvWrite {
    incarnation: u32,
    estimate: bool,
    entry: Box<dyn WriteEntryDyn>,
}

/// Per-variable multi-version state.
struct VarState {
    handle: Arc<dyn TVarDyn>,
    base: Option<BaseCell>,
    /// Writes by block transaction index, kept sorted ascending; a read by
    /// transaction `i` resolves to the highest entry below `i`. A sorted
    /// `Vec` (with its buffer pooled across blocks) instead of a `BTreeMap`:
    /// blocks write each variable a handful of times, and the tree paid one
    /// node allocation per insert on the lane's hot path.
    writes: Vec<(u32, MvWrite)>,
}

impl VarState {
    /// Index of the first write at or above `txn_idx`.
    fn floor_idx(&self, txn_idx: u32) -> usize {
        self.writes.partition_point(|(idx, _)| *idx < txn_idx)
    }

    /// The write of the highest transaction below `txn_idx`, if any.
    fn floor(&self, txn_idx: u32) -> Option<&(u32, MvWrite)> {
        self.floor_idx(txn_idx)
            .checked_sub(1)
            .map(|i| &self.writes[i])
    }
}

/// Per-transaction state within the block.
#[derive(Default)]
struct TxnState {
    /// Number of executions so far (incarnation = executions - 1).
    executions: u32,
    /// Dependencies recorded by the latest execution.
    deps: Vec<(TVarId, ReadDep)>,
    /// Transactional reads / writes of the latest execution, for statistics.
    reads: u64,
    writes: u64,
    /// Staged redo record of the latest execution, logged at block publish.
    /// A `Cell` so the publish path can *take* it (no clone) while the
    /// variable handles borrowed from the same session stay live.
    payload: std::cell::Cell<Option<Vec<u8>>>,
}

pub(crate) struct SessionInner {
    vars: HashMap<TVarId, VarState>,
    txns: Vec<TxnState>,
    /// Emptied per-variable write vectors awaiting reuse within this session
    /// — a block typically touches a similar variable population each round,
    /// so recycling the buffers takes the per-var allocation off the lane.
    spare_writes: Vec<Vec<(u32, MvWrite)>>,
}

/// Retired [`SessionInner`]s (vars map, txn vector, and spare write-vec
/// buffers all empty but with capacity retained) awaiting the next block.
/// The compat `parking_lot::Mutex::new` is `const`, so this mirrors the
/// `MV_BOX_POOL` idiom in `scratch`.
static SESSION_POOL: Mutex<Vec<SessionInner>> = Mutex::new(Vec::new());

/// Retired sessions kept beyond this are simply dropped: blocks run one at a
/// time per `Stm`, so a small pool covers even several concurrent instances.
const SESSION_POOL_MAX: usize = 8;

/// Spare write vectors retained per session; beyond this they are freed.
const SPARE_WRITE_VECS_MAX: usize = 256;

/// One block's multi-version memory. Shared by every thread executing the
/// block; a single mutex guards the (cheap) bookkeeping while the user
/// closures run outside it.
pub(crate) struct MvSession {
    inner: Mutex<SessionInner>,
}

impl MvSession {
    pub(crate) fn new(len: usize) -> Arc<Self> {
        let mut inner = SESSION_POOL.lock().pop().unwrap_or_else(|| SessionInner {
            vars: HashMap::new(),
            txns: Vec::new(),
            spare_writes: Vec::new(),
        });
        // Pooled state was scrubbed at retirement; only the txn vector's
        // length needs adjusting to this block (`resize_with` truncates or
        // grows as needed, preserving pooled `deps` capacity when shrinking
        // is not required).
        inner.txns.resize_with(len, TxnState::default);
        Arc::new(MvSession {
            inner: Mutex::new(inner),
        })
    }

    /// Begin (re-)executing transaction `txn_idx`: clear its dependency log
    /// and flag its existing writes as estimates so concurrent readers that
    /// resolve to them are invalidated (estimate-on-read).
    pub(crate) fn begin_execution(&self, txn_idx: u32) {
        let mut inner = self.inner.lock();
        for state in inner.vars.values_mut() {
            if let Ok(pos) = state.writes.binary_search_by_key(&txn_idx, |(idx, _)| *idx) {
                state.writes[pos].1.estimate = true;
            }
        }
        let txn = &mut inner.txns[txn_idx as usize];
        txn.executions += 1;
        txn.deps.clear();
        txn.reads = 0;
        txn.writes = 0;
        txn.payload.set(None);
    }

    /// Resolve a read by block transaction `txn_idx`: the write of the
    /// highest lower transaction, else the shared base snapshot (captured
    /// from storage on first access). Records the resolution as a dependency.
    pub(crate) fn read<T: Send + Sync + 'static>(
        &self,
        txn_idx: u32,
        var: &TVar<T>,
    ) -> Result<Arc<T>, TxError> {
        let id = var.id();
        loop {
            let mut inner = self.inner.lock();
            let SessionInner {
                vars,
                txns,
                spare_writes,
            } = &mut *inner;
            if let std::collections::hash_map::Entry::Vacant(slot) = vars.entry(id) {
                // First touch: capture the shared base snapshot. The variable
                // may be momentarily owned by an external committer; retry
                // outside the lock.
                match var.core().consistent_snapshot() {
                    Some((value, version)) => {
                        let handle = Arc::clone(var.core()) as Arc<dyn TVarDyn>;
                        slot.insert(VarState {
                            handle,
                            base: Some(BaseCell {
                                value: value as ArcAny,
                                version,
                            }),
                            writes: spare_writes.pop().unwrap_or_default(),
                        });
                    }
                    None => {
                        drop(inner);
                        std::hint::spin_loop();
                        std::thread::yield_now();
                        continue;
                    }
                }
            }
            let state = vars.get_mut(&id).expect("inserted above");
            let (value, dep) = if let Some(&(writer, ref write)) = state.floor(txn_idx) {
                let value = Arc::downcast::<T>(write.entry.value_any())
                    .expect("multi-version entry type mismatch for TVar id");
                (
                    value,
                    ReadDep::Write {
                        version: Version {
                            txn_idx: writer,
                            incarnation: write.incarnation,
                        },
                    },
                )
            } else {
                match &state.base {
                    Some(base) => {
                        let value = Arc::downcast::<T>(Arc::clone(&base.value))
                            .expect("base snapshot type mismatch for TVar id");
                        (
                            value,
                            ReadDep::Base {
                                version: base.version,
                            },
                        )
                    }
                    None => {
                        // Base was invalidated by a failed publish; recapture.
                        match var.core().consistent_snapshot() {
                            Some((value, version)) => {
                                state.base = Some(BaseCell {
                                    value: Arc::clone(&value) as ArcAny,
                                    version,
                                });
                                (value, ReadDep::Base { version })
                            }
                            None => {
                                drop(inner);
                                std::hint::spin_loop();
                                std::thread::yield_now();
                                continue;
                            }
                        }
                    }
                }
            };
            let txn = &mut txns[txn_idx as usize];
            txn.deps.push((id, dep));
            txn.reads += 1;
            return Ok(value);
        }
    }

    /// Record the committed write set of the latest execution of `txn_idx`
    /// into multi-version memory (replacing the previous incarnation's
    /// entries) together with its staged durability payload.
    ///
    /// The entries are *drained* out of the caller's pooled write set (its
    /// buffers stay with the worker thread); boxes displaced from a previous
    /// incarnation are parked on the global return lane for reuse.
    pub(crate) fn record(&self, txn_idx: u32, write_set: &mut WriteSet, payload: Option<Vec<u8>>) {
        let mut inner = self.inner.lock();
        let SessionInner {
            vars,
            txns,
            spare_writes,
        } = &mut *inner;
        let incarnation = txns[txn_idx as usize].executions.saturating_sub(1);
        // Drop writes from the previous incarnation that were not re-written.
        for (id, state) in vars.iter_mut() {
            if write_set.get(*id).is_none() {
                if let Ok(pos) = state.writes.binary_search_by_key(&txn_idx, |(idx, _)| *idx) {
                    let (_, old) = state.writes.remove(pos);
                    scratch::park_mv_box(old.entry);
                }
            }
        }
        let writes = write_set.len() as u64;
        for (id, entry) in write_set.drain_entries() {
            let handle = entry.var_arc();
            let state = vars.entry(id).or_insert_with(|| VarState {
                handle,
                base: None,
                writes: spare_writes.pop().unwrap_or_default(),
            });
            let write = MvWrite {
                incarnation,
                estimate: false,
                entry,
            };
            match state.writes.binary_search_by_key(&txn_idx, |(idx, _)| *idx) {
                Ok(pos) => {
                    let old = std::mem::replace(&mut state.writes[pos].1, write);
                    scratch::park_mv_box(old.entry);
                }
                Err(pos) => state.writes.insert(pos, (txn_idx, write)),
            }
        }
        let txn = &mut txns[txn_idx as usize];
        txn.writes += writes;
        if payload.is_some() {
            txn.payload.set(payload);
        }
    }

    /// Re-validate every dependency the latest execution of `txn_idx`
    /// recorded against the current multi-version memory.
    pub(crate) fn validate(&self, txn_idx: u32) -> bool {
        let inner = self.inner.lock();
        let deps = &inner.txns[txn_idx as usize].deps;
        deps.iter().all(|(id, dep)| {
            let Some(state) = inner.vars.get(id) else {
                return false;
            };
            let floor = state.floor(txn_idx);
            match dep {
                ReadDep::Write { version } => floor.is_some_and(|&(writer, ref write)| {
                    writer == version.txn_idx
                        && write.incarnation == version.incarnation
                        && !write.estimate
                }),
                ReadDep::Base { version } => {
                    floor.is_none()
                        && state
                            .base
                            .as_ref()
                            .is_some_and(|base| base.version == *version)
                }
            }
        })
    }

    /// Run `f` with exclusive access to the session state — used by the
    /// block publish protocol once execution threads have quiesced.
    pub(crate) fn with_inner<R>(&self, f: impl FnOnce(&mut SessionInner) -> R) -> R {
        f(&mut self.inner.lock())
    }
}

impl SessionInner {
    /// The final write of each written variable (the highest block
    /// transaction's entry), in canonical ascending `TVarId` order, plus the
    /// variable handles for acquisition.
    pub(crate) fn final_writes(&self) -> Vec<(TVarId, &Arc<dyn TVarDyn>, &dyn WriteEntryDyn)> {
        let mut finals: Vec<_> = self
            .vars
            .iter()
            .filter_map(|(id, state)| {
                state
                    .writes
                    .last()
                    .map(|(_, write)| (*id, &state.handle, write.entry.as_ref()))
            })
            .collect();
        finals.sort_by_key(|(id, _, _)| *id);
        finals
    }

    /// Check that every base snapshot still matches storage. Written
    /// variables are owned by the caller at this point, so their versions are
    /// stable; a read-only base owned by an external committer counts as
    /// stale (its version is about to move).
    pub(crate) fn bases_current(&self, owner: u64) -> bool {
        self.vars.values().all(|state| match &state.base {
            Some(base) => {
                let current_owner = state.handle.dyn_owner();
                state.handle.dyn_version() == base.version
                    && (current_owner == crate::tvar::NO_OWNER || current_owner == owner)
            }
            None => true,
        })
    }

    /// Invalidate the base snapshots that no longer match storage so the next
    /// validation pass re-executes exactly their readers. Returns how many
    /// bases were refreshed.
    pub(crate) fn invalidate_stale_bases(&mut self, owner: u64) -> usize {
        let mut stale = 0;
        for state in self.vars.values_mut() {
            let drop_base = match &state.base {
                Some(base) => {
                    let current_owner = state.handle.dyn_owner();
                    state.handle.dyn_version() != base.version
                        || (current_owner != crate::tvar::NO_OWNER && current_owner != owner)
                }
                None => false,
            };
            if drop_base {
                state.base = None;
                stale += 1;
            }
        }
        stale
    }

    /// Log every written transaction's staged redo record to `sink` in
    /// block (= commit) order, *taking* the payload buffers instead of
    /// cloning them. Returns the last ticket issued, if any.
    ///
    /// Takes `&self` (payloads live in `Cell`s) so the caller can hold the
    /// borrowed variable handles from [`SessionInner::final_writes`] across
    /// the call — the log must be appended before ownership is released.
    pub(crate) fn log_redo_records(
        &self,
        sink: &dyn crate::durable::DurabilitySink,
    ) -> Option<u64> {
        let mut ticket = None;
        for txn in &self.txns {
            if txn.writes > 0 {
                if let Some(payload) = txn.payload.take() {
                    ticket = Some(sink.log_commit(&payload));
                    crate::durable::recycle_payload(payload);
                }
            }
        }
        ticket
    }

    /// Per-transaction `(reads, writes)` pairs in block order, consumed by
    /// the publish path for statistics.
    pub(crate) fn txn_stats(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.txns.iter().map(|txn| (txn.reads, txn.writes))
    }

    /// Park every multi-version entry box on the global return lane and
    /// empty the per-variable state — called once the block has published,
    /// so the boxes recycle into thread arenas instead of being freed. The
    /// emptied write vectors are kept as spares for the next block.
    pub(crate) fn reclaim_boxes(&mut self) {
        let SessionInner {
            vars, spare_writes, ..
        } = self;
        for (_, mut state) in vars.drain() {
            for (_, write) in state.writes.drain(..) {
                scratch::park_mv_box(write.entry);
            }
            if spare_writes.len() < SPARE_WRITE_VECS_MAX {
                spare_writes.push(state.writes);
            }
        }
    }

    /// Scrub everything block-specific while retaining every buffer: vars
    /// drained (write vectors parked as spares), txn slots reset with their
    /// dependency-log capacity intact.
    fn reset(&mut self) {
        self.reclaim_boxes();
        for txn in &mut self.txns {
            txn.executions = 0;
            txn.deps.clear();
            txn.reads = 0;
            txn.writes = 0;
            txn.payload.set(None);
        }
    }
}

/// Retire a finished block's session: park its multi-version entry boxes,
/// scrub the block-specific state, and — when the caller held the last
/// reference, which the publish path guarantees once its executors have
/// quiesced — return the inner buffers (vars map, txn vector, spare write
/// vectors) to the global pool for the next block.
pub(crate) fn retire(session: Arc<MvSession>) {
    session.with_inner(SessionInner::reset);
    if let Some(session) = Arc::into_inner(session) {
        let inner = session.inner.into_inner();
        let mut pool = SESSION_POOL.lock();
        if pool.len() < SESSION_POOL_MAX {
            pool.push(inner);
        }
    }
}

// ---------------------------------------------------------------------------
// Thread-local activation: while a thread executes one block transaction, the
// ordinary `Transaction` read/commit paths divert into the session.
// ---------------------------------------------------------------------------

struct ActiveMv {
    session: Arc<MvSession>,
    txn_idx: u32,
}

thread_local! {
    static ACTIVE: std::cell::RefCell<Option<ActiveMv>> = const { std::cell::RefCell::new(None) };
}

/// Scope guard restoring the previous activation on drop.
pub(crate) struct ActivationGuard {
    previous: Option<ActiveMv>,
}

impl Drop for ActivationGuard {
    fn drop(&mut self) {
        ACTIVE.with(|slot| *slot.borrow_mut() = self.previous.take());
    }
}

/// Mark the current thread as executing block transaction `txn_idx` of
/// `session` until the guard drops.
pub(crate) fn activate(session: Arc<MvSession>, txn_idx: u32) -> ActivationGuard {
    ActivationGuard {
        previous: ACTIVE.with(|slot| slot.borrow_mut().replace(ActiveMv { session, txn_idx })),
    }
}

/// Whether the current thread is executing inside an MV block.
#[inline]
pub(crate) fn is_active() -> bool {
    ACTIVE.with(|slot| slot.borrow().is_some())
}

/// Divert one storage read into the active session (panics if none).
pub(crate) fn read_active<T: Send + Sync + 'static>(var: &TVar<T>) -> Result<Arc<T>, TxError> {
    let (session, txn_idx) = ACTIVE.with(|slot| {
        let borrow = slot.borrow();
        let active = borrow.as_ref().expect("no active MV session");
        (Arc::clone(&active.session), active.txn_idx)
    });
    session.read(txn_idx, var)
}

/// Record the committing transaction's write set into the active session
/// instead of running the single-version publish protocol. Drains the
/// entries out of the pooled write set, leaving its buffers intact.
pub(crate) fn record_active(write_set: &mut WriteSet, payload: Option<Vec<u8>>) {
    let (session, txn_idx) = ACTIVE.with(|slot| {
        let borrow = slot.borrow();
        let active = borrow.as_ref().expect("no active MV session");
        (Arc::clone(&active.session), active.txn_idx)
    });
    session.record(txn_idx, write_set, payload);
}
