//! The block executor: optimistic execution, the deterministic
//! validate/re-execute pass, and the atomic block publish.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::clock;
use crate::config::ClockMode;
use crate::durable::with_durable_payload;
use crate::mv::session::{self, MvSession};
use crate::registry;
use crate::stm::Stm;
use crate::tvar::NO_OWNER;
use crate::txn::pause;

/// One operation of an MV block: a re-runnable closure (it executes at least
/// once and again whenever a dependency changes) plus the task key credited
/// to the key-range telemetry and the redo record staged for the durability
/// plane.
pub struct MvOp<'a, R> {
    key: Option<u64>,
    payload: Option<Vec<u8>>,
    run: Box<dyn FnMut() -> R + Send + 'a>,
}

impl<'a, R> MvOp<'a, R> {
    /// Wrap a re-runnable closure. The closure typically calls
    /// [`crate::Stm::atomically`] (one or more times — all of them fold into
    /// this block transaction's commit record).
    pub fn new(run: impl FnMut() -> R + Send + 'a) -> Self {
        MvOp {
            key: None,
            payload: None,
            run: Box::new(run),
        }
    }

    /// Credit commits to `key` in the attached key-range telemetry.
    pub fn with_key(mut self, key: u64) -> Self {
        self.key = Some(key);
        self
    }

    /// Stage `payload` as this operation's redo record: if its execution
    /// commits a writing transaction, the record is appended to the
    /// durability sink at block publish, in block (= commit) order.
    pub fn with_payload(mut self, payload: Option<Vec<u8>>) -> Self {
        self.payload = payload;
        self
    }
}

/// Counters describing one committed block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MvBlockReport {
    /// Operations committed (the block length).
    pub committed: u64,
    /// Re-executions performed by validation passes — the MV lane's analogue
    /// of aborted attempts, but each one repairs a single dependent instead
    /// of discarding a whole transaction.
    pub reexecutions: u64,
    /// Publish retries: how often the pre-block base snapshot was invalidated
    /// by an external commit before the block could publish.
    pub retries: u64,
}

/// Results and counters of one [`run_block`] call.
#[derive(Debug)]
pub struct MvBlockOutcome<R> {
    /// Per-operation results, in block order.
    pub results: Vec<R>,
    /// Execution counters for this block.
    pub report: MvBlockReport,
}

/// One task of a shared-handler MV block (see [`run_block_tasks`]): the
/// task value plus its telemetry key and staged redo payload. Unlike
/// [`MvOp`], carrying the task by value lets every operation of the block
/// share a single handler closure — no per-task boxing on the hot path.
pub struct MvTask<T> {
    /// The task the shared handler receives.
    pub task: T,
    /// Key credited to the key-range telemetry, if any.
    pub key: Option<u64>,
    /// Redo record staged for the durability plane, if any.
    pub payload: Option<Vec<u8>>,
}

/// Execute `ops` as one MV block on the calling thread and publish the
/// result atomically. See the [module docs](crate::mv) for the protocol.
pub fn run_block<'a, R: Send>(stm: &Stm, ops: Vec<MvOp<'a, R>>) -> MvBlockOutcome<R> {
    run_block_with(stm, ops, 1)
}

/// [`run_block`] with up to `parallelism` threads for the optimistic first
/// pass (the validation pass and the publish stay sequential — that is what
/// makes the commit order deterministic). `parallelism <= 1` runs entirely
/// on the calling thread.
pub fn run_block_with<'a, R: Send>(
    stm: &Stm,
    ops: Vec<MvOp<'a, R>>,
    parallelism: usize,
) -> MvBlockOutcome<R> {
    let len = ops.len();
    let ops: Vec<Mutex<MvOp<'a, R>>> = ops.into_iter().map(Mutex::new).collect();
    let exec = |index: usize| {
        let mut op = ops[index].lock();
        let op = &mut *op;
        match op.payload.clone() {
            Some(payload) => with_durable_payload(payload, &mut op.run),
            None => (op.run)(),
        }
    };
    let key_of = |index: usize| ops[index].lock().key;
    run_block_core(stm, len, &exec, &key_of, parallelism)
}

/// Execute `tasks` as one MV block driven by a single shared handler.
///
/// The batch-submission spine uses this instead of [`run_block_with`]: every
/// operation of a facade batch runs the same handler over a different task,
/// so boxing one closure per task (as [`MvOp`] must, to erase heterogeneous
/// closure types) would put an allocation per transaction on the hot path.
/// Re-executions call `run` again with the same task reference.
pub fn run_block_tasks<T, R, F>(
    stm: &Stm,
    tasks: Vec<MvTask<T>>,
    run: F,
    parallelism: usize,
) -> MvBlockOutcome<R>
where
    T: Send,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let len = tasks.len();
    // Per-entry mutexes (inline, not allocations) keep the bound at
    // `T: Send` — the same contract `MvOp`'s boxed closures had — while the
    // optimistic pass shares the task vector across threads. An index is
    // only ever executed by one thread at a time, so the locks are
    // uncontended.
    let tasks: Vec<Mutex<MvTask<T>>> = tasks.into_iter().map(Mutex::new).collect();
    let exec = |index: usize| {
        let entry = tasks[index].lock();
        match entry.payload.clone() {
            Some(payload) => with_durable_payload(payload, || run(&entry.task)),
            None => run(&entry.task),
        }
    };
    let key_of = |index: usize| tasks[index].lock().key;
    run_block_core(stm, len, &exec, &key_of, parallelism)
}

/// The block protocol shared by both entry points: `exec` runs one
/// operation (and is called again on re-execution), `key_of` reports the
/// operation's telemetry key.
fn run_block_core<R: Send>(
    stm: &Stm,
    len: usize,
    exec: &(dyn Fn(usize) -> R + Sync),
    key_of: &dyn Fn(usize) -> Option<u64>,
    parallelism: usize,
) -> MvBlockOutcome<R> {
    let session = MvSession::new(len);
    let mut results: Vec<Option<R>> = Vec::with_capacity(len);
    results.resize_with(len, || None);
    if len == 0 {
        return MvBlockOutcome {
            results: Vec::new(),
            report: MvBlockReport::default(),
        };
    }

    // Pass 1: optimistic execution. Multi-version reads make intra-block
    // conflicts impossible to *lose* — a wrong read is repaired later, not
    // aborted now — so every operation executes exactly once here.
    if parallelism > 1 && len > 1 {
        let results_slots: Vec<Mutex<&mut Option<R>>> =
            results.iter_mut().map(Mutex::new).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..parallelism.min(len) {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= len {
                        break;
                    }
                    let value = execute_indexed(&session, index, exec);
                    **results_slots[index].lock() = Some(value);
                });
            }
        });
    } else {
        for (index, slot) in results.iter_mut().enumerate() {
            *slot = Some(execute_indexed(&session, index, exec));
        }
    }

    // Pass 2: deterministic forward validation. Reads resolve only downward,
    // and transactions 0..i are final once position i is reached, so one
    // in-order sweep converges to the sequential semantics of the block.
    let mut reexecutions: u64 = 0;
    for (index, slot) in results.iter_mut().enumerate() {
        if !session.validate(index as u32) {
            *slot = Some(execute_indexed(&session, index, exec));
            reexecutions += 1;
        }
    }

    // Pass 3: publish the block as one composite committer.
    let owner = clock::next_txn_id();
    let _shared = registry::register(owner, clock::now());
    let mut retries: u64 = 0;
    let durable_ticket = loop {
        let published = session.with_inner(|inner| {
            let finals = inner.final_writes();
            // Acquire in canonical ascending-id order (finals are sorted),
            // the same discipline single-version committers use, so mixed
            // lanes cannot deadlock.
            for (_, handle, _) in &finals {
                while !handle.dyn_try_acquire(owner) {
                    pause(std::time::Duration::ZERO);
                }
            }
            if !inner.bases_current(owner) {
                for (_, handle, _) in &finals {
                    handle.dyn_release(owner);
                }
                return None;
            }
            let watermark = finals
                .iter()
                .map(|(_, handle, _)| handle.dyn_version())
                .max()
                .unwrap_or(0);
            let commit_ts = match stm.config().clock_mode {
                ClockMode::Ticked => clock::tick().max(watermark + 1),
                ClockMode::Lazy => (clock::now() + 1).max(watermark + 1),
            };
            for (_, _, entry) in &finals {
                entry.publish(commit_ts);
            }
            // Redo records go to the sink in block order — commit order —
            // before ownership is released, exactly like the single-version
            // commit path: no dependent can read (and so log past) a value
            // that is not in the log queue yet. The staged payload buffers
            // are taken, not cloned.
            let mut ticket = None;
            if let Some(sink) = stm.stats_ref().durability_sink() {
                ticket = inner.log_redo_records(sink.as_ref());
            }
            for (_, handle, _) in &finals {
                handle.dyn_release(owner);
            }
            for (index, (reads, writes)) in inner.txn_stats().enumerate() {
                stm.stats_ref().record_commit(writes == 0, reads, writes);
                if let Some(keyed) = stm.stats_ref().key_telemetry() {
                    if let Some(key) = key_of(index) {
                        keyed.record(key, 1, 0);
                    }
                }
            }
            Some(ticket)
        });
        match published {
            Some(ticket) => break ticket,
            None => {
                retries += 1;
                // Mirror the single-version lazy-clock discipline: a stale
                // base means a commit stamp ran ahead of our snapshot.
                if stm.config().clock_mode == ClockMode::Lazy {
                    clock::advance_past(clock::now() + 1);
                }
                session.with_inner(|inner| inner.invalidate_stale_bases(NO_OWNER));
                // Re-execute exactly the readers of the moved bases.
                for (index, slot) in results.iter_mut().enumerate() {
                    if !session.validate(index as u32) {
                        *slot = Some(execute_indexed(&session, index, exec));
                        reexecutions += 1;
                    }
                }
            }
        }
    };
    registry::unregister(owner);
    // Retire the session: the block's multi-version entry boxes return to
    // the global pool so subsequent transactions refill them instead of
    // allocating, and the session's own buffers (vars map, txn vector) are
    // recycled into the next block.
    session::retire(session);
    if let Some(ticket) = durable_ticket {
        if let Some(sink) = stm.stats_ref().durability_sink() {
            sink.wait_durable(ticket);
        }
    }
    let report = MvBlockReport {
        committed: len as u64,
        reexecutions,
        retries,
    };
    stm.stats_ref()
        .record_mv_block(report.committed, report.reexecutions, report.retries);
    MvBlockOutcome {
        results: results
            .into_iter()
            .map(|slot| slot.expect("executed"))
            .collect(),
        report,
    }
}

/// Run one (re-)execution of operation `index` under the session's
/// thread-local activation. `exec` stages the durability payload itself.
fn execute_indexed<R>(
    session: &Arc<MvSession>,
    index: usize,
    exec: &(dyn Fn(usize) -> R + Sync),
) -> R {
    session.begin_execution(index as u32);
    let _guard = session::activate(Arc::clone(session), index as u32);
    exec(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::DurabilitySink;
    use crate::tvar::TVar;

    #[test]
    fn block_applies_ops_in_order_with_read_your_predecessors() {
        let stm = Stm::default();
        let var = TVar::new(0u64);
        let ops: Vec<MvOp<'_, u64>> = (0..8)
            .map(|_| {
                let stm = stm.clone();
                let var = var.clone();
                MvOp::new(move || stm.atomically(|tx| tx.modify(&var, |v| v + 1).map(|()| 0)))
            })
            .collect();
        let outcome = run_block(&stm, ops);
        assert_eq!(outcome.report.committed, 8);
        assert_eq!(stm.read_now(&var), 8, "each op must read its predecessor");
        assert_eq!(stm.snapshot().mv_commits, 8);
        assert_eq!(stm.snapshot().commits, 8);
        assert_eq!(stm.snapshot().total_aborts(), 0);
    }

    #[test]
    fn final_published_value_is_the_highest_transaction_write() {
        let stm = Stm::default();
        let var = TVar::new(0u64);
        let before = var.version();
        let ops: Vec<MvOp<'_, ()>> = (0..4)
            .map(|index| {
                let stm = stm.clone();
                let var = var.clone();
                MvOp::new(move || stm.atomically(|tx| tx.write(&var, index + 1)))
            })
            .collect();
        run_block(&stm, ops);
        assert_eq!(stm.read_now(&var), 4);
        // One composite commit: exactly one version bump for four writes.
        assert!(var.version() > before);
    }

    #[test]
    fn parallel_first_pass_converges_to_sequential_semantics() {
        let stm = Stm::default();
        let var = TVar::new(0u64);
        for _ in 0..20 {
            let ops: Vec<MvOp<'_, ()>> = (0..16)
                .map(|_| {
                    let stm = stm.clone();
                    let var = var.clone();
                    MvOp::new(move || stm.atomically(|tx| tx.modify(&var, |v| v + 1)))
                })
                .collect();
            run_block_with(&stm, ops, 4);
        }
        assert_eq!(stm.read_now(&var), 320, "re-execution must repair races");
    }

    #[test]
    fn reexecutions_are_counted_and_repair_dependents_only() {
        let stm = Stm::default();
        let a = TVar::new(0u64);
        let b = TVar::new(0u64);
        // Op 0 writes `a`; op 1 reads `a` into `b`; op 2 touches only `b`'s
        // chain. Run with a parallelism-1 first pass, then force a stale
        // base by publishing externally between passes — covered instead by
        // the parallel test above; here we check the deterministic pass
        // yields sequential results.
        let ops: Vec<MvOp<'_, ()>> = vec![
            {
                let (stm, a) = (stm.clone(), a.clone());
                MvOp::new(move || stm.atomically(|tx| tx.write(&a, 7)))
            },
            {
                let (stm, a, b) = (stm.clone(), a.clone(), b.clone());
                MvOp::new(move || {
                    stm.atomically(|tx| {
                        let seen = *tx.read(&a)?;
                        tx.write(&b, seen)
                    })
                })
            },
        ];
        let outcome = run_block(&stm, ops);
        assert_eq!(stm.read_now(&b), 7, "op 1 must observe op 0's write");
        assert_eq!(outcome.report.reexecutions, 0, "sequential pass is exact");
    }

    #[test]
    fn external_commit_between_execute_and_publish_retries_the_block() {
        // A concurrent single-version committer invalidates the base; the
        // block must re-execute the affected readers and still publish a
        // value consistent with both lanes.
        let stm = Stm::default();
        let var = TVar::new(0u64);
        let external = std::sync::Barrier::new(2);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                external.wait();
                for _ in 0..100 {
                    stm.atomically(|tx| tx.modify(&var, |v| v + 1));
                }
            });
            scope.spawn(|| {
                external.wait();
                for _ in 0..50 {
                    let ops: Vec<MvOp<'_, ()>> = (0..4)
                        .map(|_| {
                            let stm = stm.clone();
                            let var = var.clone();
                            MvOp::new(move || stm.atomically(|tx| tx.modify(&var, |v| v + 1)))
                        })
                        .collect();
                    run_block(&stm, ops);
                }
            });
        });
        assert_eq!(stm.read_now(&var), 300, "no lost updates across lanes");
    }

    #[test]
    fn keys_credit_the_attached_telemetry() {
        use crate::telemetry::KeyRangeTelemetry;
        let stm = Stm::default();
        let telemetry = Arc::new(KeyRangeTelemetry::new(0, 99, 4));
        assert!(stm.stats().attach_key_telemetry(Arc::clone(&telemetry)));
        let var = TVar::new(0u64);
        let ops: Vec<MvOp<'_, ()>> = [10u64, 80]
            .into_iter()
            .map(|key| {
                let stm = stm.clone();
                let var = var.clone();
                MvOp::new(move || stm.atomically(|tx| tx.modify(&var, |v| v + 1))).with_key(key)
            })
            .collect();
        run_block(&stm, ops);
        let snap = telemetry.snapshot();
        assert_eq!(snap.total_commits(), 2);
        assert_eq!(snap.total_aborts(), 0);
    }

    /// Recording sink capturing the redo-record order.
    #[derive(Default, Debug)]
    struct RecordingSink {
        records: Mutex<Vec<Vec<u8>>>,
    }

    impl DurabilitySink for RecordingSink {
        fn log_commit(&self, payload: &[u8]) -> u64 {
            let mut records = self.records.lock();
            records.push(payload.to_vec());
            records.len() as u64
        }
        fn wait_durable(&self, _ticket: u64) {}
    }

    #[test]
    fn redo_records_are_logged_in_block_commit_order() {
        let stm = Stm::default();
        let sink = Arc::new(RecordingSink::default());
        assert!(stm.stats().attach_durability(sink.clone()));
        let var = TVar::new(0u64);
        let ops: Vec<MvOp<'_, ()>> = (0..6u8)
            .map(|index| {
                let stm = stm.clone();
                let var = var.clone();
                MvOp::new(move || stm.atomically(|tx| tx.modify(&var, |v| v + 1)))
                    .with_payload(Some(vec![index]))
            })
            .collect();
        run_block_with(&stm, ops, 3);
        let records = sink.records.lock();
        assert_eq!(
            *records,
            (0..6u8).map(|index| vec![index]).collect::<Vec<_>>(),
            "redo order must equal commit (block) order even with a parallel first pass"
        );
    }

    #[test]
    fn read_only_ops_log_nothing() {
        let stm = Stm::default();
        let sink = Arc::new(RecordingSink::default());
        assert!(stm.stats().attach_durability(sink.clone()));
        let var = TVar::new(5u64);
        let ops: Vec<MvOp<'_, u64>> = vec![{
            let (stm, var) = (stm.clone(), var.clone());
            MvOp::new(move || stm.atomically(|tx| tx.read(&var).map(|v| *v)))
                .with_payload(Some(vec![9]))
        }];
        let outcome = run_block(&stm, ops);
        assert_eq!(outcome.results, vec![5]);
        assert!(
            sink.records.lock().is_empty(),
            "read-only commits never log"
        );
    }

    #[test]
    fn empty_block_is_a_no_op() {
        let stm = Stm::default();
        let outcome = run_block::<()>(&stm, Vec::new());
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.report, MvBlockReport::default());
    }
}
