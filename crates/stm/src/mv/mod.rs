//! Multi-version optimistic execution lane (Block-STM hybrid).
//!
//! The single-version commit protocol in [`crate::txn`] resolves conflicts by
//! aborting and re-running whole transactions — under a hot key every loser
//! burns its full execution. This module adds a second way to commit, modeled
//! on Block-STM's `MVMemory` / `(txn_idx, incarnation)` scheduler: a **block**
//! of transactions executes optimistically against *multi-version* memory with
//! a fixed, deterministic commit order, and conflicts inside the block are
//! repaired by re-executing only the dependents of a changed write instead of
//! wholesale abort.
//!
//! # How a block commits
//!
//! 1. **Execute.** Every operation in the block runs as an ordinary
//!    [`crate::Stm::atomically`] closure, but its storage reads are diverted
//!    into the block's multi-version session: a read by block transaction `i` resolves
//!    to the write of the highest block transaction `j < i` (a multi-version
//!    entry keyed by `(txn_idx, incarnation)`), falling back to a shared
//!    pre-block *base snapshot* of the underlying [`crate::TVar`]. Each read
//!    records the resolution it observed — estimate-on-read dependency
//!    tracking: when a lower transaction later re-executes, its stale writes
//!    are flagged as estimates and every recorded dependency on them becomes
//!    invalid.
//! 2. **Validate + re-execute dependents.** One forward pass over the block
//!    re-checks every recorded dependency against the current multi-version
//!    memory. Because reads only ever resolve *downward* (to lower
//!    transaction indices), a single in-order pass converges: a transaction
//!    whose dependencies changed re-executes in place with a bumped
//!    incarnation, and only its own dependents can be invalidated after it.
//! 3. **Publish.** The block commits as one composite transaction through the
//!    ordinary single-version protocol: acquire the written variables in
//!    canonical id order, validate that every base snapshot is still current,
//!    stamp one commit timestamp (per the runtime's [`crate::ClockMode`]),
//!    publish the *final* value of each variable, and hand each transaction's
//!    staged durability payload to the [`crate::DurabilitySink`] **in block
//!    order** — redo-log order equals commit order. If a base moved, only the
//!    transactions that read the moved variables re-execute (another
//!    validation pass) and the publish retries; nothing already consistent is
//!    thrown away.
//!
//! Mixed-lane runs are linearizable by construction: to every single-version
//! transaction the block is just a large committer that owns, validates and
//! stamps exactly like they do.
//!
//! Operations inside a block must tolerate re-execution (they run at least
//! once, possibly more) and must not use [`crate::Transaction::retry`]; both
//! hold for the dictionary workloads this lane targets.

pub(crate) mod block;
pub(crate) mod session;

pub use block::{
    run_block, run_block_tasks, run_block_with, MvBlockOutcome, MvBlockReport, MvOp, MvTask,
};
pub use session::Version;
