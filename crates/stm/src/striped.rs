//! Cache-line padding and per-thread counter striping.
//!
//! The commit path used to funnel every transaction through a handful of
//! process-shared atomic counters ([`crate::StmStats`]) and, when telemetry
//! is attached, a shared bucket array ([`crate::KeyRangeTelemetry`]). Each
//! `fetch_add` on those counters bounces the owning cache line between every
//! committing core — exactly the instrumentation overhead that caps
//! disjoint-key scalability long before real conflicts do.
//!
//! This module provides the two pieces the hot-path counters are rebuilt
//! from:
//!
//! * [`CachePadded<T>`] — aligns `T` to a cache-line boundary so adjacent
//!   shards never share a line.
//! * [`Shards<T>`] — a small fixed-size shard registry: each thread is
//!   assigned a stable shard index ([`thread_stripe`], round-robin at first
//!   use) and all of its hot-path increments land in its own padded shard.
//!   Readers aggregate lazily by iterating every shard at `snapshot()` time.
//!
//! With at least as many shards as worker threads, hot-path counter updates
//! touch only thread-private cache lines; the aggregation cost is paid by
//! the (rare) snapshot reader instead of by every commit.

use std::cell::Cell;
use std::ops::Deref;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Pads and aligns a value to (at least) a cache-line boundary so two
/// neighbouring `CachePadded` values never share a cache line.
///
/// 128 bytes on x86_64/aarch64 (adjacent-line prefetchers pull pairs of
/// 64-byte lines), 64 bytes elsewhere.
#[cfg_attr(any(target_arch = "x86_64", target_arch = "aarch64"), repr(align(128)))]
#[cfg_attr(
    not(any(target_arch = "x86_64", target_arch = "aarch64")),
    repr(align(64))
)]
#[derive(Debug, Default)]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wrap `value` in cache-line padding.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Consume the padding and return the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

/// Round-robin thread stripe counter: the n-th thread to ask for a stripe
/// gets index n. Indices are dense, so taking them modulo a shard count
/// spreads up to that many threads over distinct shards with no collisions.
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_STRIPE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Stable, dense per-thread stripe index (assigned round-robin on first
/// use). Shared with every striped structure in this crate so a thread's
/// hot-path writes cluster in the same shard slot everywhere.
pub fn thread_stripe() -> usize {
    THREAD_STRIPE.with(|slot| match slot.get() {
        Some(index) => index,
        None => {
            let index = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed);
            slot.set(Some(index));
            index
        }
    })
}

/// A fixed-size registry of cache-line-padded shards.
///
/// `Shards::local()` returns the shard assigned to the calling thread (its
/// [`thread_stripe`] modulo the shard count — threads beyond the shard count
/// share shards, which costs scalability but never correctness). Aggregation
/// is lazy: readers iterate [`Shards::iter`] and fold.
#[derive(Debug)]
pub struct Shards<T> {
    shards: Box<[CachePadded<T>]>,
    /// Shard count minus one; the count is always a power of two so the
    /// modulo is a mask.
    mask: usize,
}

/// Default shard count used by [`crate::StmStats`]: comfortably above the
/// paper's 16-processor methodology so every worker writes its own line.
pub const DEFAULT_SHARDS: usize = 32;

impl<T: Default> Shards<T> {
    /// Create `count` zeroed shards. `count` is rounded up to a power of
    /// two; `0` selects [`DEFAULT_SHARDS`].
    pub fn new(count: usize) -> Self {
        let count = match count {
            0 => DEFAULT_SHARDS,
            n => n.next_power_of_two(),
        };
        Shards {
            shards: (0..count).map(|_| CachePadded::default()).collect(),
            mask: count - 1,
        }
    }
}

impl<T> Shards<T> {
    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when there are no shards (never the case for constructed
    /// registries; present to satisfy the `len`/`is_empty` convention).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The calling thread's shard.
    #[inline]
    pub fn local(&self) -> &T {
        &self.shards[thread_stripe() & self.mask]
    }

    /// Iterate over every shard (for lazy aggregation).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.shards.iter().map(|padded| &**padded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn cache_padded_is_line_aligned() {
        assert!(std::mem::align_of::<CachePadded<u64>>() >= 64);
        assert!(std::mem::size_of::<CachePadded<u64>>() >= 64);
        let padded = CachePadded::new(7u64);
        assert_eq!(*padded, 7);
        assert_eq!(padded.into_inner(), 7);
    }

    #[test]
    fn thread_stripe_is_stable_per_thread_and_distinct_across_threads() {
        let mine = thread_stripe();
        assert_eq!(mine, thread_stripe());
        let theirs = std::thread::spawn(|| (thread_stripe(), thread_stripe()))
            .join()
            .unwrap();
        assert_eq!(theirs.0, theirs.1);
        assert_ne!(mine, theirs.0);
    }

    #[test]
    fn shard_counts_round_up_to_powers_of_two() {
        assert_eq!(Shards::<u64>::new(0).len(), DEFAULT_SHARDS);
        assert_eq!(Shards::<u64>::new(1).len(), 1);
        assert_eq!(Shards::<u64>::new(3).len(), 4);
        assert_eq!(Shards::<u64>::new(32).len(), 32);
    }

    #[test]
    fn increments_aggregate_across_shards() {
        let shards: Shards<AtomicU64> = Shards::new(4);
        let total: u64 = 400;
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..(total / 4) {
                        shards.local().fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        let sum: u64 = shards.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        assert_eq!(sum, total);
    }

    #[test]
    fn single_shard_still_aggregates() {
        let shards: Shards<AtomicU64> = Shards::new(1);
        shards.local().fetch_add(5, Ordering::Relaxed);
        assert_eq!(shards.iter().count(), 1);
        assert_eq!(
            shards
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .sum::<u64>(),
            5
        );
    }
}
