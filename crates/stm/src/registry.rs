//! Registry of in-flight transactions.
//!
//! Contention managers such as Polka and Karma need to compare the priority
//! of the *current* transaction with the priority of the *enemy* transaction
//! that owns a variable it wants. The registry is a small process-wide table
//! mapping live transaction ids to the metadata those policies consult:
//! accumulated priority and start timestamp.
//!
//! Entries are registered when a transaction attempt begins and removed when
//! it commits or aborts, so the table stays proportional to the number of
//! concurrently executing transactions (i.e. worker threads), not to the
//! total number of transactions executed.
//!
//! The table is sharded by the registering thread's stripe index (see
//! [`crate::striped::thread_stripe`]): a thread's register/unregister pair —
//! two lock acquisitions on *every* transaction — stays on a shard only it
//! (and at most a few stripe-sharing threads) touches, so the registry is
//! not a process-wide serialization point on the commit path. Lookups by
//! enemy transaction id scan the shards; they only happen on conflicts,
//! which are the rare case the commit path is being optimized for.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::striped::thread_stripe;

/// Metadata about an in-flight transaction that other transactions (via their
/// contention managers) may inspect.
#[derive(Debug)]
pub struct TxnShared {
    /// Accumulated priority (e.g. number of variables opened, possibly
    /// retained across retries depending on the contention manager).
    priority: AtomicU64,
    /// Global-clock timestamp at which the transaction (first) started.
    start_ts: AtomicU64,
}

impl TxnShared {
    fn new(start_ts: u64) -> Self {
        TxnShared {
            priority: AtomicU64::new(0),
            start_ts: AtomicU64::new(start_ts),
        }
    }

    /// Current accumulated priority.
    pub fn priority(&self) -> u64 {
        self.priority.load(Ordering::Relaxed)
    }

    /// Set the accumulated priority.
    pub fn set_priority(&self, p: u64) {
        self.priority.store(p, Ordering::Relaxed);
    }

    /// Start timestamp (smaller = older transaction).
    pub fn start_ts(&self) -> u64 {
        self.start_ts.load(Ordering::Relaxed)
    }

    /// Update the start timestamp (used when a fresh attempt does not retain
    /// seniority).
    pub fn set_start_ts(&self, ts: u64) {
        self.start_ts.store(ts, Ordering::Relaxed);
    }
}

/// Shard count (power of two): at least the paper's 16-worker methodology,
/// so each worker thread's register/unregister traffic stays on its own
/// shard.
const REGISTRY_SHARDS: usize = 16;

type Shard = RwLock<Option<HashMap<u64, Arc<TxnShared>>>>;

static REGISTRY: [Shard; REGISTRY_SHARDS] = [const { RwLock::new(None) }; REGISTRY_SHARDS];

/// The shard this thread registers into (stable per thread).
fn local_shard() -> &'static Shard {
    &REGISTRY[thread_stripe() & (REGISTRY_SHARDS - 1)]
}

thread_local! {
    /// One finished transaction's metadata allocation parked for reuse: the
    /// retry loop in [`crate::Stm`] registers one transaction at a time per
    /// thread, so a single slot makes steady-state registration
    /// allocation-free.
    static SHARED_CACHE: std::cell::Cell<Option<Arc<TxnShared>>> =
        const { std::cell::Cell::new(None) };
}

/// Register a transaction and return its shared metadata handle, reusing
/// the thread's parked allocation when one is available.
pub fn register(txn_id: u64, start_ts: u64) -> Arc<TxnShared> {
    let shared = match SHARED_CACHE.with(|slot| slot.take()) {
        Some(recycled) => {
            recycled.set_priority(0);
            recycled.set_start_ts(start_ts);
            recycled
        }
        None => Arc::new(TxnShared::new(start_ts)),
    };
    let mut guard = local_shard().write();
    guard
        .get_or_insert_with(HashMap::new)
        .insert(txn_id, Arc::clone(&shared));
    shared
}

/// Offer a finished (already unregistered) transaction's metadata handle
/// back to the thread's cache. Accepted only when the caller holds the last
/// reference: an enemy that cloned the handle out of the registry must keep
/// observing the *old* transaction's values, never a recycled successor's.
/// (After [`unregister`] the map holds no clone, so the count can only
/// decrease — the check cannot race into a false positive.)
pub fn recycle(shared: Arc<TxnShared>) {
    if Arc::strong_count(&shared) == 1 {
        SHARED_CACHE.with(|slot| slot.set(Some(shared)));
    }
}

/// Remove a transaction from the registry (on commit or final abort).
///
/// Registration and removal happen on the same thread (the retry loop in
/// [`crate::Stm`] brackets the attempts), so the entry is normally in the
/// local shard; the other shards are scanned as a fallback so the contract
/// holds even for callers that migrate threads.
pub fn unregister(txn_id: u64) {
    {
        let mut guard = local_shard().write();
        if let Some(map) = guard.as_mut() {
            if map.remove(&txn_id).is_some() {
                return;
            }
        }
    }
    for shard in &REGISTRY {
        let mut guard = shard.write();
        if let Some(map) = guard.as_mut() {
            if map.remove(&txn_id).is_some() {
                return;
            }
        }
    }
}

/// Look up the shared metadata of a (possibly finished) transaction.
/// Scans the shards; only reached on conflicts, never on the clean path.
pub fn lookup(txn_id: u64) -> Option<Arc<TxnShared>> {
    for shard in &REGISTRY {
        let guard = shard.read();
        if let Some(found) = guard.as_ref().and_then(|m| m.get(&txn_id).cloned()) {
            return Some(found);
        }
    }
    None
}

/// Priority of the given transaction, or 0 when it is unknown / finished.
pub fn priority_of(txn_id: u64) -> u64 {
    lookup(txn_id).map(|s| s.priority()).unwrap_or(0)
}

/// Start timestamp of the given transaction, or `u64::MAX` (i.e. "newest
/// possible") when it is unknown / finished.
pub fn start_ts_of(txn_id: u64) -> u64 {
    lookup(txn_id).map(|s| s.start_ts()).unwrap_or(u64::MAX)
}

/// Number of currently registered (in-flight) transactions. Primarily for
/// tests and diagnostics.
pub fn live_count() -> usize {
    REGISTRY
        .iter()
        .map(|shard| shard.read().as_ref().map(|m| m.len()).unwrap_or(0))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_lookup_unregister() {
        let id = crate::clock::next_txn_id();
        let shared = register(id, 42);
        shared.set_priority(7);
        assert_eq!(priority_of(id), 7);
        assert_eq!(start_ts_of(id), 42);
        assert!(lookup(id).is_some());
        unregister(id);
        assert!(lookup(id).is_none());
        assert_eq!(priority_of(id), 0);
        assert_eq!(start_ts_of(id), u64::MAX);
    }

    #[test]
    fn unknown_transaction_defaults() {
        assert_eq!(priority_of(u64::MAX), 0);
        assert_eq!(start_ts_of(u64::MAX), u64::MAX);
    }

    #[test]
    fn concurrent_registration_is_safe() {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let mut ids = Vec::new();
                    for _ in 0..200 {
                        let id = crate::clock::next_txn_id();
                        let s = register(id, 1);
                        s.set_priority(id);
                        ids.push(id);
                    }
                    for &id in &ids {
                        assert_eq!(priority_of(id), id);
                        unregister(id);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn lookups_see_entries_registered_by_other_threads() {
        // Registration lands in the registering thread's shard; enemy
        // lookups (which run on *other* threads) must still find it.
        let id = crate::clock::next_txn_id();
        let s = register(id, 5);
        s.set_priority(3);
        let observed = std::thread::spawn(move || (priority_of(id), start_ts_of(id)))
            .join()
            .unwrap();
        assert_eq!(observed, (3, 5));
        unregister(id);
        assert!(lookup(id).is_none());
    }

    #[test]
    fn shared_metadata_updates_are_visible() {
        let id = crate::clock::next_txn_id();
        let s = register(id, 10);
        s.set_start_ts(99);
        assert_eq!(start_ts_of(id), 99);
        unregister(id);
    }
}
