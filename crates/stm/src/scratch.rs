//! Pooled per-thread transaction scratch: reusable read-set and write-set
//! storage so the steady-state commit path performs no heap allocation.
//!
//! Every transaction attempt used to build a fresh `HashMap` read-set, a
//! fresh `BTreeMap` write-set and one `Box<dyn WriteEntryDyn>` per written
//! variable — allocator traffic that dominates per-transaction constant
//! cost long before contention does (see the `alloc_profile` harness
//! experiment). This module replaces those with a [`TxnScratch`] that a
//! worker thread checks out once per logical transaction and *clears*
//! between attempts and between transactions instead of re-creating:
//!
//! * [`ReadSet`]: a dense entry vector indexed by a reusable
//!   open-addressing table (Fibonacci-hashed, linear-probed, slots hold
//!   `entry index + 1` with `0` = empty). Clearing truncates the vector
//!   and zero-fills the table; the buffers persist, so a warmed thread
//!   never allocates on reads.
//! * [`WriteSet`]: an insertion-ordered arena of type-erased entry boxes
//!   with a reusable sort index for the canonical (ascending `TVarId`)
//!   commit lock order — the ordering the `BTreeMap` used to provide.
//!   Cleared entry boxes are *vacated* (their `Arc` references dropped, so
//!   no stale value or variable is kept alive) and parked on a free list
//!   for reuse by the next transaction on this thread.
//!
//! [`ScratchGuard`] is the checkout handle: its `Drop` clears the scratch
//! and returns it to the thread-local pool, which also runs during panic
//! unwinding — a handler that panics mid-transaction cannot leak read or
//! write entries into the next transaction on that thread (see the pool
//! hygiene tests).

use std::cell::Cell;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::tvar::{TVarCore, TVarDyn, TVarId};
use crate::txn::{TypedWrite, WriteEntryDyn};

/// Process-wide return lane for entry boxes that leave their owning thread's
/// arena: the multi-version lane moves write entries into block memory and
/// publishes them on another thread, so the box cannot go back to the
/// originating thread's free list directly. Parked here instead (vacated),
/// and adopted by whichever thread next misses its local free list.
static MV_BOX_POOL: Mutex<Vec<Box<dyn WriteEntryDyn>>> = Mutex::new(Vec::new());

/// Bound on the global pool so a burst of MV blocks cannot pin memory.
const MV_BOX_POOL_MAX: usize = 256;

/// How many parked boxes a thread adopts per local free-list miss.
const MV_BOX_ADOPT: usize = 8;

/// Vacate an entry box that escaped its arena (multi-version block memory)
/// and park it for reuse by any thread.
pub(crate) fn park_mv_box(mut entry: Box<dyn WriteEntryDyn>) {
    entry.reset();
    let mut pool = MV_BOX_POOL.lock();
    if pool.len() < MV_BOX_POOL_MAX {
        pool.push(entry);
    }
}

/// Move up to [`MV_BOX_ADOPT`] parked boxes into a thread-local free list.
fn adopt_mv_boxes(free: &mut Vec<Box<dyn WriteEntryDyn>>) {
    let mut pool = MV_BOX_POOL.lock();
    let keep = pool.len().saturating_sub(MV_BOX_ADOPT);
    free.extend(pool.drain(keep..));
}

/// A read-set entry: which variable was read and at which version.
pub(crate) struct ReadSetEntry {
    pub(crate) id: TVarId,
    pub(crate) var: Arc<dyn TVarDyn>,
    pub(crate) version: u64,
}

/// Initial open-addressing table size (power of two).
const READ_TABLE_MIN: usize = 32;

/// Reusable read-set: dense entries plus an open-addressing index.
#[derive(Default)]
pub(crate) struct ReadSet {
    entries: Vec<ReadSetEntry>,
    /// Probe table over `entries`: slot holds `entry index + 1`, 0 = empty.
    /// Length is always a power of two (or zero before first use).
    table: Vec<u32>,
}

#[inline]
fn probe_start(id: TVarId, table_len: usize) -> usize {
    // Fibonacci hashing spreads the sequential TVar ids; the high bits feed
    // the (power-of-two-sized) table.
    let h = id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (h >> 32) as usize & (table_len - 1)
}

impl ReadSet {
    /// Number of distinct variables read.
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Look up the recorded entry for `id`.
    pub(crate) fn get(&self, id: TVarId) -> Option<&ReadSetEntry> {
        if self.entries.is_empty() {
            return None;
        }
        let mut slot = probe_start(id, self.table.len());
        loop {
            match self.table[slot] {
                0 => return None,
                stored => {
                    let entry = &self.entries[stored as usize - 1];
                    if entry.id == id {
                        return Some(entry);
                    }
                }
            }
            slot = (slot + 1) & (self.table.len() - 1);
        }
    }

    /// Record a read of `id`. The caller must have checked absence first
    /// (the read path always does a [`ReadSet::get`] before inserting).
    pub(crate) fn insert(&mut self, id: TVarId, var: Arc<dyn TVarDyn>, version: u64) {
        // Keep the probe table under 2/3 load (growth doubles it, a
        // rebuild that only happens while the footprint is still growing —
        // steady state re-uses the high-water buffers allocation-free).
        if (self.entries.len() + 1) * 3 >= self.table.len() * 2 {
            self.grow_table();
        }
        self.entries.push(ReadSetEntry { id, var, version });
        let index = self.entries.len() as u32; // index + 1, and we just pushed
        let mut slot = probe_start(id, self.table.len());
        while self.table[slot] != 0 {
            slot = (slot + 1) & (self.table.len() - 1);
        }
        self.table[slot] = index;
    }

    fn grow_table(&mut self) {
        let new_len = (self.table.len() * 2).max(READ_TABLE_MIN);
        self.table.clear();
        self.table.resize(new_len, 0);
        for (i, entry) in self.entries.iter().enumerate() {
            let mut slot = probe_start(entry.id, new_len);
            while self.table[slot] != 0 {
                slot = (slot + 1) & (new_len - 1);
            }
            self.table[slot] = i as u32 + 1;
        }
    }

    /// Iterate the recorded reads (insertion order).
    pub(crate) fn iter(&self) -> impl Iterator<Item = &ReadSetEntry> {
        self.entries.iter()
    }

    /// Drop all entries, keeping the buffers for reuse.
    pub(crate) fn clear(&mut self) {
        if self.entries.is_empty() {
            return;
        }
        self.entries.clear();
        self.table.fill(0);
    }

    /// True when no entry (and no stale index slot) is present.
    pub(crate) fn is_clear(&self) -> bool {
        self.entries.is_empty() && self.table.iter().all(|&slot| slot == 0)
    }
}

/// Most entry boxes a thread parks for reuse; beyond this they are freed
/// so one huge transaction cannot pin memory forever.
const FREE_BOXES_MAX: usize = 32;

/// Reusable write-set arena: insertion-ordered `(id, entry)` pairs, a
/// reusable canonical-order index, and a free list of vacated entry boxes.
///
/// Lookups scan linearly: write sets on the paths this crate optimizes are
/// a handful of variables, where a scan beats any index. The canonical
/// ascending-id lock order the commit protocol needs is produced on demand
/// by [`WriteSet::sort_canonical`] into a reusable index vector.
#[derive(Default)]
pub(crate) struct WriteSet {
    entries: Vec<(TVarId, Box<dyn WriteEntryDyn>)>,
    /// Entry indices sorted by ascending id (valid after `sort_canonical`).
    order: Vec<u32>,
    /// Vacated boxes awaiting reuse.
    free: Vec<Box<dyn WriteEntryDyn>>,
}

impl WriteSet {
    /// Number of distinct variables written.
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no variable has been written.
    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The buffered entry for `id`, if present.
    pub(crate) fn get(&self, id: TVarId) -> Option<&dyn WriteEntryDyn> {
        self.entries
            .iter()
            .find(|(entry_id, _)| *entry_id == id)
            .map(|(_, entry)| entry.as_ref())
    }

    /// Mutable access to the buffered entry for `id`, if present.
    pub(crate) fn get_mut(&mut self, id: TVarId) -> Option<&mut (dyn WriteEntryDyn + 'static)> {
        self.entries
            .iter_mut()
            .find(|(entry_id, _)| *entry_id == id)
            .map(|(_, entry)| entry.as_mut())
    }

    /// Insert a fresh typed entry for `id` (the caller has checked absence),
    /// reusing a vacated box of the same underlying type when one is parked.
    pub(crate) fn insert_typed<T: Send + Sync + 'static>(
        &mut self,
        id: TVarId,
        core: Arc<TVarCore<T>>,
        value: Arc<T>,
    ) {
        let mut reused = Self::refill_parked(&mut self.free, &core, &value);
        if reused.is_none() && self.free.is_empty() {
            // Local free list exhausted (the MV lane moves boxes into block
            // memory): adopt from the global return lane before allocating.
            adopt_mv_boxes(&mut self.free);
            reused = Self::refill_parked(&mut self.free, &core, &value);
        }
        let entry = reused.unwrap_or_else(|| {
            Box::new(TypedWrite {
                core: Some(core),
                value: Some(value),
            })
        });
        self.entries.push((id, entry));
    }

    /// Take a parked box of the matching concrete type off `free`, refilled
    /// with the given core and value.
    fn refill_parked<T: Send + Sync + 'static>(
        free: &mut Vec<Box<dyn WriteEntryDyn>>,
        core: &Arc<TVarCore<T>>,
        value: &Arc<T>,
    ) -> Option<Box<dyn WriteEntryDyn>> {
        let index = free.iter_mut().position(|entry| {
            entry
                .as_any_mut()
                .downcast_mut::<TypedWrite<T>>()
                .map(|typed| {
                    typed.core = Some(Arc::clone(core));
                    typed.value = Some(Arc::clone(value));
                })
                .is_some()
        })?;
        Some(free.swap_remove(index))
    }

    /// Iterate `(id, entry)` pairs in insertion order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (TVarId, &dyn WriteEntryDyn)> {
        self.entries.iter().map(|(id, entry)| (*id, entry.as_ref()))
    }

    /// Rebuild the canonical (ascending-id) index. Call before using
    /// [`WriteSet::ranked`].
    pub(crate) fn sort_canonical(&mut self) {
        self.order.clear();
        self.order.extend(0..self.entries.len() as u32);
        let entries = &self.entries;
        self.order
            .sort_unstable_by_key(|&index| entries[index as usize].0);
    }

    /// The entry at position `rank` of the canonical order.
    pub(crate) fn ranked(&self, rank: usize) -> &dyn WriteEntryDyn {
        self.entries[self.order[rank] as usize].1.as_ref()
    }

    /// Move the entry boxes out (for the multi-version lane's block
    /// session), leaving the arena empty but with its buffers intact.
    pub(crate) fn drain_entries(
        &mut self,
    ) -> std::vec::Drain<'_, (TVarId, Box<dyn WriteEntryDyn>)> {
        self.order.clear();
        self.entries.drain(..)
    }

    /// Park a vacated box for reuse (drops it when the free list is full
    /// or the box still holds references).
    pub(crate) fn recycle_box(&mut self, mut entry: Box<dyn WriteEntryDyn>) {
        entry.reset();
        if self.free.len() < FREE_BOXES_MAX {
            self.free.push(entry);
        }
    }

    /// Vacate all entries onto the free list, keeping every buffer.
    pub(crate) fn clear(&mut self) {
        self.order.clear();
        while let Some((_, entry)) = self.entries.pop() {
            self.recycle_box(entry);
        }
    }

    /// True when no live entry remains and every parked box is vacated.
    pub(crate) fn is_clear(&self) -> bool {
        self.entries.is_empty() && self.free.iter().all(|entry| entry.is_vacant())
    }
}

/// The per-thread transaction scratch: one read set and one write set,
/// cleared and reused across attempts and transactions.
#[derive(Default)]
pub(crate) struct TxnScratch {
    pub(crate) reads: ReadSet,
    pub(crate) writes: WriteSet,
}

impl TxnScratch {
    /// Drop all recorded reads and writes, keeping every buffer.
    pub(crate) fn clear(&mut self) {
        self.reads.clear();
        self.writes.clear();
    }

    /// True when no read entry, write entry or stale reference survives —
    /// the state a scratch must be in when it re-enters the pool.
    pub(crate) fn is_clear(&self) -> bool {
        self.reads.is_clear() && self.writes.is_clear()
    }
}

thread_local! {
    static SCRATCH_POOL: Cell<Option<Box<TxnScratch>>> = const { Cell::new(None) };
}

/// Checkout handle for the thread-local scratch. Dropping it — normally or
/// during panic unwinding — clears the scratch and returns it to the pool.
pub(crate) struct ScratchGuard {
    scratch: Option<Box<TxnScratch>>,
}

impl ScratchGuard {
    /// Take the thread's pooled scratch, or build a fresh one the first
    /// time (or when transactions nest: the inner checkout finds the pool
    /// empty, works from a fresh scratch, and the outer one wins the slot
    /// back on drop).
    pub(crate) fn acquire() -> Self {
        let scratch = SCRATCH_POOL
            .with(|pool| pool.take())
            .unwrap_or_else(|| Box::new(TxnScratch::default()));
        debug_assert!(scratch.is_clear(), "pooled scratch must come back clear");
        ScratchGuard {
            scratch: Some(scratch),
        }
    }

    /// The scratch checked out by this guard.
    pub(crate) fn scratch(&mut self) -> &mut TxnScratch {
        self.scratch
            .as_mut()
            .expect("scratch present until the guard drops")
    }
}

impl Drop for ScratchGuard {
    fn drop(&mut self) {
        if let Some(mut scratch) = self.scratch.take() {
            scratch.clear();
            SCRATCH_POOL.with(|pool| pool.set(Some(scratch)));
        }
    }
}

/// Test-only visibility: whether this thread's pooled scratch (if any) is
/// clear. Used by the pool hygiene tests.
#[cfg(test)]
pub(crate) fn pooled_scratch_is_clear() -> bool {
    SCRATCH_POOL.with(|pool| {
        let scratch = pool.take();
        let clear = scratch.as_ref().is_none_or(|s| s.is_clear());
        pool.set(scratch);
        clear
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tvar::TVar;

    fn dyn_var(var: &TVar<u32>) -> Arc<dyn TVarDyn> {
        Arc::clone(var.core()) as Arc<dyn TVarDyn>
    }

    #[test]
    fn read_set_get_insert_roundtrip() {
        let vars: Vec<TVar<u32>> = (0..100).map(TVar::new).collect();
        let mut reads = ReadSet::default();
        for (i, var) in vars.iter().enumerate() {
            assert!(reads.get(var.id()).is_none());
            reads.insert(var.id(), dyn_var(var), i as u64);
        }
        assert_eq!(reads.len(), 100);
        for (i, var) in vars.iter().enumerate() {
            let entry = reads.get(var.id()).expect("inserted");
            assert_eq!(entry.version, i as u64);
        }
        reads.clear();
        assert!(reads.is_clear());
        assert!(reads.get(vars[0].id()).is_none());
    }

    #[test]
    fn read_set_reuses_buffers_after_clear() {
        let vars: Vec<TVar<u32>> = (0..50).map(TVar::new).collect();
        let mut reads = ReadSet::default();
        for round in 0..3 {
            for var in &vars {
                reads.insert(var.id(), dyn_var(var), round);
            }
            let table_capacity = reads.table.capacity();
            let entries_capacity = reads.entries.capacity();
            reads.clear();
            assert_eq!(reads.table.capacity(), table_capacity);
            assert_eq!(reads.entries.capacity(), entries_capacity);
        }
    }

    #[test]
    fn write_set_canonical_order_is_ascending_ids() {
        let a = TVar::new(0u32);
        let b = TVar::new(0u32);
        let c = TVar::new(0u32);
        let mut writes = WriteSet::default();
        // Insert in a scrambled order relative to the ids.
        for var in [&b, &c, &a] {
            writes.insert_typed(var.id(), Arc::clone(var.core()), Arc::new(1u32));
        }
        writes.sort_canonical();
        let mut ids: Vec<TVarId> = Vec::new();
        for rank in 0..writes.len() {
            ids.push(writes.ranked(rank).var().dyn_id());
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn write_set_clear_vacates_and_reuses_boxes() {
        let var = TVar::new(7u32);
        let mut writes = WriteSet::default();
        writes.insert_typed(var.id(), Arc::clone(var.core()), Arc::new(8u32));
        let value = writes
            .get(var.id())
            .expect("present")
            .value_any()
            .downcast::<u32>()
            .expect("typed");
        assert_eq!(*value, 8);
        writes.clear();
        assert!(writes.is_clear(), "cleared boxes must hold no references");
        assert_eq!(writes.free.len(), 1);
        // Next insert of the same type reuses the parked box.
        writes.insert_typed(var.id(), Arc::clone(var.core()), Arc::new(9u32));
        assert_eq!(writes.free.len(), 0);
        assert_eq!(writes.len(), 1);
    }

    #[test]
    fn scratch_guard_returns_cleared_scratch_to_the_pool() {
        {
            let mut guard = ScratchGuard::acquire();
            let var = TVar::new(1u32);
            let scratch = guard.scratch();
            scratch.reads.insert(var.id(), dyn_var(&var), 3);
            scratch
                .writes
                .insert_typed(var.id(), Arc::clone(var.core()), Arc::new(2u32));
        }
        assert!(pooled_scratch_is_clear());
        // The next checkout gets the same (cleared) scratch back.
        let mut guard = ScratchGuard::acquire();
        assert!(guard.scratch().is_clear());
    }
}
