//! Recorded operation traces.
//!
//! A trace is a pre-generated, finite sequence of transaction specifications.
//! The harness uses traces when it needs *identical* inputs across the
//! schedulers being compared (throughput comparisons use live generators, but
//! load-balance and contention tables replay the same trace under each
//! policy so the only variable is the scheduler).

use crate::distribution::DistributionKind;
use crate::generator::{OpGenerator, OpMix};
use crate::spec::TxnSpec;

/// A finite, replayable sequence of transactions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    ops: Vec<TxnSpec>,
    description: String,
}

impl Trace {
    /// Record a trace of `n` operations from the paper's generator.
    pub fn record_paper(kind: DistributionKind, n: usize, seed: u64) -> Self {
        let mut gen = OpGenerator::paper(kind, seed);
        Trace {
            ops: gen.batch(n),
            description: format!("{kind} x{n} (seed {seed})"),
        }
    }

    /// Record a trace with an explicit operation mix.
    pub fn record_with_mix(kind: DistributionKind, mix: OpMix, n: usize, seed: u64) -> Self {
        let mut gen = OpGenerator::with_mix(kind, mix, seed);
        Trace {
            ops: gen.batch(n),
            description: format!("{kind} x{n} mixed (seed {seed})"),
        }
    }

    /// Build a trace from explicit operations (tests, hand-crafted cases).
    pub fn from_ops(ops: Vec<TxnSpec>) -> Self {
        let description = format!("explicit x{}", ops.len());
        Trace { ops, description }
    }

    /// The recorded operations.
    pub fn ops(&self) -> &[TxnSpec] {
        &self.ops
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Human-readable description.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The keys of the recorded operations, in order (used to seed the
    /// adaptive partitioner's sampling phase deterministically).
    pub fn keys(&self) -> Vec<u32> {
        self.ops.iter().map(|op| op.key).collect()
    }

    /// Split the trace into `n` round-robin interleaved sub-traces, one per
    /// producer thread, preserving per-producer order.
    pub fn split_round_robin(&self, n: usize) -> Vec<Trace> {
        assert!(n > 0, "cannot split a trace across zero producers");
        let mut parts: Vec<Vec<TxnSpec>> = vec![Vec::new(); n];
        for (i, op) in self.ops.iter().enumerate() {
            parts[i % n].push(*op);
        }
        parts
            .into_iter()
            .enumerate()
            .map(|(i, ops)| Trace {
                ops,
                description: format!("{} [part {i}/{n}]", self.description),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::OpKind;

    #[test]
    fn recording_is_deterministic() {
        let a = Trace::record_paper(DistributionKind::Uniform, 500, 1);
        let b = Trace::record_paper(DistributionKind::Uniform, 500, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        assert!(!a.is_empty());
        assert!(a.description().contains("500"));
    }

    #[test]
    fn keys_match_ops() {
        let t = Trace::record_paper(DistributionKind::exponential_paper(), 100, 2);
        assert_eq!(t.keys().len(), 100);
        assert!(t.keys().iter().zip(t.ops()).all(|(k, op)| *k == op.key));
    }

    #[test]
    fn split_preserves_every_operation() {
        let t = Trace::record_paper(DistributionKind::gaussian_paper(), 101, 3);
        let parts = t.split_round_robin(4);
        assert_eq!(parts.len(), 4);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 101);
        // Part sizes differ by at most one.
        let sizes: Vec<_> = parts.iter().map(|p| p.len()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn explicit_traces_round_trip() {
        let ops = vec![
            TxnSpec {
                key: 1,
                value: 10,
                op: OpKind::Insert,
            },
            TxnSpec {
                key: 2,
                value: 20,
                op: OpKind::Delete,
            },
        ];
        let t = Trace::from_ops(ops.clone());
        assert_eq!(t.ops(), ops.as_slice());
    }

    #[test]
    #[should_panic(expected = "zero producers")]
    fn split_across_zero_is_rejected() {
        Trace::record_paper(DistributionKind::Uniform, 10, 4).split_round_robin(0);
    }
}
