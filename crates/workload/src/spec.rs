//! The 17-bit transaction encoding used by the paper.
//!
//! "The first 16 bits are for the transaction content (i.e., the dictionary
//! key) and the last is the transaction type (insert or delete)."

/// Number of bits in the dictionary-key portion of the encoding.
pub const DICT_KEY_BITS: u32 = 16;

/// Total number of bits in the encoded transaction value.
pub const TXN_SPACE_BITS: u32 = 17;

/// Size of the encoded space (2^17).
pub const TXN_SPACE_SIZE: u32 = 1 << TXN_SPACE_BITS;

/// Mask selecting the dictionary key.
pub const DICT_KEY_MASK: u32 = (1 << DICT_KEY_BITS) - 1;

/// The operation half of a transaction specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Insert the key.
    Insert,
    /// Delete the key.
    Delete,
    /// Look the key up (extension; the paper's benchmarks omit lookups to
    /// emphasize conflicts).
    Lookup,
}

impl OpKind {
    /// Encode into the paper's single type bit (lookups map to insert's bit;
    /// they only occur in extended workloads that bypass the 17-bit packing).
    pub fn type_bit(&self) -> u32 {
        match self {
            OpKind::Insert | OpKind::Lookup => 0,
            OpKind::Delete => 1,
        }
    }
}

/// A fully specified transaction: what the producer pushes into a task queue.
///
/// "For efficiency we insert the parameters of a transaction rather than the
/// transaction itself into the task queue" — `TxnSpec` is exactly those
/// parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxnSpec {
    /// 16-bit dictionary key.
    pub key: u32,
    /// Value to associate on insert.
    pub value: u64,
    /// Operation to perform.
    pub op: OpKind,
}

impl TxnSpec {
    /// Build a spec from a raw 17-bit sample, exactly as the paper decodes
    /// its generated integers.
    pub fn from_raw(raw: u32) -> Self {
        let raw = raw & (TXN_SPACE_SIZE - 1);
        let key = (raw >> 1) & DICT_KEY_MASK;
        let op = if raw & 1 == 0 {
            OpKind::Insert
        } else {
            OpKind::Delete
        };
        TxnSpec {
            key,
            value: u64::from(key),
            op,
        }
    }

    /// Pack this spec back into the 17-bit encoding.
    pub fn encode(&self) -> u32 {
        (self.key << 1) | self.op.type_bit()
    }

    /// The dictionary key.
    pub fn key(&self) -> u32 {
        self.key
    }

    /// True when this is an update (insert or delete).
    pub fn is_update(&self) -> bool {
        !matches!(self.op, OpKind::Lookup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(TXN_SPACE_SIZE, 131_072);
        assert_eq!(DICT_KEY_MASK, 0xFFFF);
        assert_eq!(TXN_SPACE_BITS, DICT_KEY_BITS + 1);
    }

    #[test]
    fn raw_round_trip() {
        for raw in [0u32, 1, 2, 12_345, 65_535, 131_071] {
            let spec = TxnSpec::from_raw(raw);
            assert!(spec.key <= DICT_KEY_MASK);
            // Encoding loses nothing but the out-of-range bits.
            assert_eq!(TxnSpec::from_raw(spec.encode()), spec);
        }
    }

    #[test]
    fn type_bit_selects_operation() {
        assert_eq!(TxnSpec::from_raw(0b10).op, OpKind::Insert);
        assert_eq!(TxnSpec::from_raw(0b11).op, OpKind::Delete);
        assert_eq!(TxnSpec::from_raw(0b10).key, 1);
        assert_eq!(TxnSpec::from_raw(0b11).key, 1);
    }

    #[test]
    fn out_of_range_raw_is_masked() {
        let spec = TxnSpec::from_raw(u32::MAX);
        assert!(spec.key <= DICT_KEY_MASK);
    }

    #[test]
    fn update_classification() {
        assert!(TxnSpec::from_raw(0).is_update());
        let lookup = TxnSpec {
            key: 3,
            value: 0,
            op: OpKind::Lookup,
        };
        assert!(!lookup.is_update());
    }
}
