//! Ramped arrival intensity — the time axis of the elastic-scaling
//! experiments.
//!
//! The paper's producers run flat out for the whole measurement window; an
//! elastic executor is interesting precisely when they do not. An
//! [`ArrivalRamp`] describes arrival intensity as a piecewise-constant
//! function of the *fraction of the window elapsed*: each [`RampPhase`]
//! holds a relative duration weight and an intensity in `(0, 1]` (1 = the
//! producer submits as fast as it can, 0.05 = it is throttled to ~5% of
//! that). The canonical elastic workload is
//! [`ArrivalRamp::quiet_burst_quiet`]: a quiet warm-up, a full-rate burst,
//! and a quiet cool-down in equal thirds, which forces the pool to grow
//! into the burst and shed workers after it.

/// One phase of an [`ArrivalRamp`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RampPhase {
    /// Relative duration weight of this phase (phases are scaled so their
    /// weights tile the whole window).
    pub weight: f64,
    /// Arrival intensity in `(0, 1]`: the fraction of the producer's
    /// maximum submission rate.
    pub intensity: f64,
}

impl RampPhase {
    /// A phase with the given weight and intensity.
    pub fn new(weight: f64, intensity: f64) -> Self {
        RampPhase { weight, intensity }
    }
}

/// A piecewise-constant arrival-intensity profile over a measurement
/// window (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalRamp {
    phases: Vec<RampPhase>,
    total_weight: f64,
}

impl ArrivalRamp {
    /// Build a ramp from explicit phases.
    ///
    /// Rejects an empty phase list, non-positive weights, and intensities
    /// outside `(0, 1]`.
    pub fn new(phases: Vec<RampPhase>) -> Result<Self, String> {
        if phases.is_empty() {
            return Err("an arrival ramp needs at least one phase".into());
        }
        for (index, phase) in phases.iter().enumerate() {
            if !(phase.weight > 0.0 && phase.weight.is_finite()) {
                return Err(format!(
                    "phase {index}: weight must be positive and finite, got {}",
                    phase.weight
                ));
            }
            if !(phase.intensity > 0.0 && phase.intensity <= 1.0) {
                return Err(format!(
                    "phase {index}: intensity must lie in (0, 1], got {}",
                    phase.intensity
                ));
            }
        }
        let total_weight = phases.iter().map(|p| p.weight).sum();
        Ok(ArrivalRamp {
            phases,
            total_weight,
        })
    }

    /// Constant full-rate arrivals (the paper's unthrottled producers).
    pub fn flat() -> Self {
        ArrivalRamp::new(vec![RampPhase::new(1.0, 1.0)]).expect("flat ramp is valid")
    }

    /// The canonical elastic load shape: a quiet third at `quiet`
    /// intensity, a full-rate burst third, and another quiet third.
    ///
    /// # Panics
    /// Panics when `quiet` lies outside `(0, 1]`.
    pub fn quiet_burst_quiet(quiet: f64) -> Self {
        ArrivalRamp::new(vec![
            RampPhase::new(1.0, quiet),
            RampPhase::new(1.0, 1.0),
            RampPhase::new(1.0, quiet),
        ])
        .expect("quiet intensity must lie in (0, 1]")
    }

    /// The phases, in order.
    pub fn phases(&self) -> &[RampPhase] {
        &self.phases
    }

    /// Arrival intensity at `fraction` of the window elapsed (clamped into
    /// `[0, 1]`; past-the-end reads the last phase, so producers that
    /// overrun the window wind down at the final intensity).
    pub fn intensity_at(&self, fraction: f64) -> f64 {
        let fraction = fraction.clamp(0.0, 1.0);
        let mut cursor = 0.0;
        for phase in &self.phases {
            cursor += phase.weight / self.total_weight;
            if fraction < cursor {
                return phase.intensity;
            }
        }
        self.phases.last().expect("validated non-empty").intensity
    }
}

impl std::fmt::Display for ArrivalRamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ramp[")?;
        for (index, phase) in self.phases.iter().enumerate() {
            if index > 0 {
                write!(f, " ")?;
            }
            write!(f, "{:.0}%", phase.intensity * 100.0)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_burst_quiet_tiles_the_window() {
        let ramp = ArrivalRamp::quiet_burst_quiet(0.05);
        assert_eq!(ramp.phases().len(), 3);
        assert_eq!(ramp.intensity_at(0.0), 0.05);
        assert_eq!(ramp.intensity_at(0.34), 1.0);
        assert_eq!(ramp.intensity_at(0.65), 1.0);
        assert_eq!(ramp.intensity_at(0.67), 0.05);
        assert_eq!(ramp.intensity_at(1.0), 0.05);
        // Past-the-end (producers winding down) reads the last phase.
        assert_eq!(ramp.intensity_at(7.0), 0.05);
        assert_eq!(ramp.intensity_at(-1.0), 0.05);
    }

    #[test]
    fn flat_ramp_is_always_full_rate() {
        let ramp = ArrivalRamp::flat();
        for step in 0..=10 {
            assert_eq!(ramp.intensity_at(step as f64 / 10.0), 1.0);
        }
    }

    #[test]
    fn unequal_weights_shift_the_boundaries() {
        let ramp =
            ArrivalRamp::new(vec![RampPhase::new(3.0, 0.1), RampPhase::new(1.0, 1.0)]).unwrap();
        assert_eq!(ramp.intensity_at(0.5), 0.1);
        assert_eq!(ramp.intensity_at(0.74), 0.1);
        assert_eq!(ramp.intensity_at(0.8), 1.0);
    }

    #[test]
    fn invalid_ramps_are_rejected() {
        assert!(ArrivalRamp::new(vec![]).is_err());
        assert!(ArrivalRamp::new(vec![RampPhase::new(0.0, 1.0)]).is_err());
        assert!(ArrivalRamp::new(vec![RampPhase::new(1.0, 0.0)]).is_err());
        assert!(ArrivalRamp::new(vec![RampPhase::new(1.0, 1.5)]).is_err());
        assert!(ArrivalRamp::new(vec![RampPhase::new(f64::NAN, 1.0)]).is_err());
    }

    #[test]
    fn display_summarizes_intensities() {
        assert_eq!(
            ArrivalRamp::quiet_burst_quiet(0.05).to_string(),
            "ramp[5% 100% 5%]"
        );
    }
}
