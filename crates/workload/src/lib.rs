//! # katme-workload — workload generators for the KATME experiments
//!
//! The paper generates "transactions of three distributions in a 17-bit
//! integer space. The first 16 bits are for the transaction content (i.e.,
//! the dictionary key) and the last is the transaction type (insert or
//! delete)." This crate reproduces those generators exactly — plus a couple
//! of extensions (Zipfian, bimodal, lookup mixes) used by the ablation
//! benches — and packages them behind a small trait so producers in the
//! executor can draw an endless stream of dictionary operations.
//!
//! * [`KeyDistribution`] — uniform, Gaussian (μ=65536, σ=12000), exponential
//!   (λ=0.001), Zipfian and bimodal distributions over the 17-bit space.
//! * [`TxnSpec`] / [`encode`](TxnSpec::encode) — the 17-bit packing used by
//!   the paper (16-bit dictionary key + 1 operation bit).
//! * [`OpGenerator`] — turns a distribution into a stream of
//!   `katme_collections`-style insert/delete/lookup operations, per spec or
//!   in fixed-size batches ([`OpGenerator::batches`]).
//! * [`ArrivalRamp`] — piecewise-constant arrival-intensity profiles
//!   (quiet → burst → quiet) for the elastic-scaling experiments, where the
//!   interesting signal is the *change* in load, not its steady state.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod distribution;
pub mod generator;
pub mod ramp;
pub mod spec;
pub mod trace;

pub use distribution::{DistributionKind, KeyDistribution};
pub use generator::{OpGenerator, OpMix, SpecBatches};
pub use ramp::{ArrivalRamp, RampPhase};
pub use spec::{OpKind, TxnSpec, DICT_KEY_BITS, TXN_SPACE_BITS};
pub use trace::Trace;
