//! Operation-stream generators.
//!
//! A producer thread in the paper "generates the next transaction" in a loop;
//! this module is that generator. It combines a [`KeyDistribution`] with an
//! operation mix ("the benchmark uses the same number of inserts and deletes,
//! so the load factor at stable state is around 1") and emits [`TxnSpec`]s.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::distribution::{DistributionKind, KeyDistribution};
use crate::spec::{OpKind, TxnSpec};

/// Proportions of insert / delete / lookup operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Fraction of inserts.
    pub insert: f64,
    /// Fraction of deletes.
    pub delete: f64,
    /// Fraction of lookups.
    pub lookup: f64,
}

impl OpMix {
    /// The paper's mix: equal inserts and deletes, no lookups.
    pub const PAPER: OpMix = OpMix {
        insert: 0.5,
        delete: 0.5,
        lookup: 0.0,
    };

    /// A read-mostly mix used by the extended benches.
    pub const READ_MOSTLY: OpMix = OpMix {
        insert: 0.1,
        delete: 0.1,
        lookup: 0.8,
    };

    /// Create a mix, normalizing the proportions.
    ///
    /// # Panics
    /// Panics if all three proportions are zero or any is negative.
    pub fn new(insert: f64, delete: f64, lookup: f64) -> Self {
        assert!(
            insert >= 0.0 && delete >= 0.0 && lookup >= 0.0,
            "op-mix proportions must be non-negative"
        );
        let total = insert + delete + lookup;
        assert!(total > 0.0, "op-mix proportions must not all be zero");
        OpMix {
            insert: insert / total,
            delete: delete / total,
            lookup: lookup / total,
        }
    }

    fn pick(&self, r: f64) -> OpKind {
        if r < self.insert {
            OpKind::Insert
        } else if r < self.insert + self.delete {
            OpKind::Delete
        } else {
            OpKind::Lookup
        }
    }
}

impl Default for OpMix {
    fn default() -> Self {
        OpMix::PAPER
    }
}

/// An endless, seeded stream of dictionary operations.
#[derive(Debug, Clone)]
pub struct OpGenerator {
    keys: KeyDistribution,
    mix: OpMix,
    rng: SmallRng,
    generated: u64,
    use_paper_encoding: bool,
    /// Reused raw-sample buffer for [`OpGenerator::batch_into`] (paper
    /// encoding draws a whole batch of 17-bit samples at once).
    scratch: Vec<u32>,
}

impl OpGenerator {
    /// Generator reproducing the paper's scheme exactly: the operation type
    /// comes from the low bit of the 17-bit sample, so the mix is implicitly
    /// 50/50 insert/delete.
    pub fn paper(kind: DistributionKind, seed: u64) -> Self {
        OpGenerator {
            keys: KeyDistribution::new(kind, seed),
            mix: OpMix::PAPER,
            rng: SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
            generated: 0,
            use_paper_encoding: true,
            scratch: Vec::new(),
        }
    }

    /// Generator with an explicit operation mix (extension workloads).
    pub fn with_mix(kind: DistributionKind, mix: OpMix, seed: u64) -> Self {
        OpGenerator {
            keys: KeyDistribution::new(kind, seed),
            mix,
            rng: SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
            generated: 0,
            use_paper_encoding: false,
            scratch: Vec::new(),
        }
    }

    /// The key distribution driving this generator.
    pub fn distribution(&self) -> DistributionKind {
        self.keys.kind()
    }

    /// The operation mix.
    pub fn mix(&self) -> OpMix {
        self.mix
    }

    /// How many operations have been generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Generate the next transaction specification.
    pub fn next_spec(&mut self) -> TxnSpec {
        self.generated += 1;
        if self.use_paper_encoding {
            let raw = self.keys.sample_raw();
            let mut spec = TxnSpec::from_raw(raw);
            spec.value = self.generated;
            spec
        } else {
            let key = self.keys.sample_key();
            let op = self.mix.pick(self.rng.gen::<f64>());
            TxnSpec {
                key,
                value: self.generated,
                op,
            }
        }
    }

    /// Generate a batch of specifications.
    pub fn batch(&mut self, n: usize) -> Vec<TxnSpec> {
        let mut out = Vec::new();
        self.batch_into(&mut out, n);
        out
    }

    /// Generate `n` specifications into `out`, clearing it first. Under the
    /// paper encoding the raw 17-bit samples are drawn through
    /// [`KeyDistribution::sample_into`] into an internal scratch buffer, so a
    /// producer loop that calls this per batch allocates nothing in steady
    /// state (beyond the `out` vector the caller controls).
    pub fn batch_into(&mut self, out: &mut Vec<TxnSpec>, n: usize) {
        out.clear();
        out.reserve(n);
        if self.use_paper_encoding {
            let mut scratch = std::mem::take(&mut self.scratch);
            self.keys.sample_into(&mut scratch, n);
            out.extend(scratch.iter().map(|&raw| {
                self.generated += 1;
                let mut spec = TxnSpec::from_raw(raw);
                spec.value = self.generated;
                spec
            }));
            self.scratch = scratch;
        } else {
            for _ in 0..n {
                out.push(self.next_spec());
            }
        }
    }

    /// Turn the generator into an endless iterator of fixed-size batches —
    /// the producer side of the batched dispatch plane. Each `next()` yields
    /// `batch_size` specs ready for `submit_batch`.
    ///
    /// # Panics
    /// Panics when `batch_size` is zero.
    pub fn batches(self, batch_size: usize) -> SpecBatches {
        assert!(batch_size > 0, "batch size must be at least 1");
        SpecBatches {
            generator: self,
            batch_size,
        }
    }
}

/// Endless iterator of fixed-size [`TxnSpec`] batches, from
/// [`OpGenerator::batches`]. The underlying spec stream is identical to the
/// per-spec iterator: batching changes the hand-over granularity, not the
/// workload.
#[derive(Debug, Clone)]
pub struct SpecBatches {
    generator: OpGenerator,
    batch_size: usize,
}

impl SpecBatches {
    /// The batch size every `next()` yields.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// The wrapped generator.
    pub fn generator(&self) -> &OpGenerator {
        &self.generator
    }
}

impl Iterator for SpecBatches {
    type Item = Vec<TxnSpec>;

    fn next(&mut self) -> Option<Vec<TxnSpec>> {
        Some(self.generator.batch(self.batch_size))
    }
}

impl Iterator for OpGenerator {
    type Item = TxnSpec;

    fn next(&mut self) -> Option<TxnSpec> {
        Some(self.next_spec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_generator_is_half_inserts_half_deletes() {
        let mut g = OpGenerator::paper(DistributionKind::Uniform, 11);
        let batch = g.batch(20_000);
        let inserts = batch.iter().filter(|s| s.op == OpKind::Insert).count();
        let fraction = inserts as f64 / batch.len() as f64;
        assert!((fraction - 0.5).abs() < 0.02, "insert fraction {fraction}");
        assert_eq!(g.generated(), 20_000);
    }

    #[test]
    fn keys_are_sixteen_bit() {
        let mut g = OpGenerator::paper(DistributionKind::exponential_paper(), 5);
        assert!(g.batch(5_000).iter().all(|s| s.key < (1 << 16)));
    }

    #[test]
    fn explicit_mix_is_respected() {
        let mix = OpMix::new(1.0, 1.0, 8.0);
        let mut g = OpGenerator::with_mix(DistributionKind::Uniform, mix, 7);
        let batch = g.batch(20_000);
        let lookups = batch.iter().filter(|s| s.op == OpKind::Lookup).count();
        let fraction = lookups as f64 / batch.len() as f64;
        assert!((fraction - 0.8).abs() < 0.02, "lookup fraction {fraction}");
    }

    #[test]
    fn mix_normalization_and_validation() {
        let mix = OpMix::new(2.0, 2.0, 0.0);
        assert!((mix.insert - 0.5).abs() < 1e-12);
        assert!((mix.delete - 0.5).abs() < 1e-12);
        assert_eq!(OpMix::default(), OpMix::PAPER);
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn zero_mix_is_rejected() {
        let _ = OpMix::new(0.0, 0.0, 0.0);
    }

    #[test]
    fn generator_is_reproducible() {
        let a: Vec<_> = OpGenerator::paper(DistributionKind::gaussian_paper(), 9)
            .take(200)
            .collect();
        let b: Vec<_> = OpGenerator::paper(DistributionKind::gaussian_paper(), 9)
            .take(200)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn batch_into_matches_the_per_spec_stream_and_reuses_buffers() {
        let per_spec: Vec<_> = OpGenerator::paper(DistributionKind::Uniform, 33)
            .take(900)
            .collect();
        let mut g = OpGenerator::paper(DistributionKind::Uniform, 33);
        let mut out = Vec::new();
        let mut batched = Vec::new();
        for _ in 0..3 {
            g.batch_into(&mut out, 300);
            batched.extend(out.iter().copied());
        }
        assert_eq!(per_spec, batched, "batch_into must not change the stream");
        let (out_cap, scratch_cap) = (out.capacity(), g.scratch.capacity());
        g.batch_into(&mut out, 300);
        assert_eq!(out.capacity(), out_cap, "out buffer must be reused");
        assert_eq!(g.scratch.capacity(), scratch_cap, "scratch must be reused");
        assert_eq!(g.generated(), 1_200);
    }

    #[test]
    fn batches_iterator_matches_the_per_spec_stream() {
        let per_spec: Vec<_> = OpGenerator::paper(DistributionKind::Uniform, 21)
            .take(600)
            .collect();
        let batched: Vec<_> = OpGenerator::paper(DistributionKind::Uniform, 21)
            .batches(150)
            .take(4)
            .flatten()
            .collect();
        assert_eq!(per_spec, batched, "batching must not change the workload");
    }

    #[test]
    #[should_panic(expected = "batch size must be at least 1")]
    fn zero_batch_size_is_rejected() {
        let _ = OpGenerator::paper(DistributionKind::Uniform, 1).batches(0);
    }

    #[test]
    fn values_are_unique_per_generator() {
        let mut g = OpGenerator::paper(DistributionKind::Uniform, 13);
        let batch = g.batch(1_000);
        let values: std::collections::HashSet<_> = batch.iter().map(|s| s.value).collect();
        assert_eq!(values.len(), batch.len());
    }
}
