//! Key distributions over the paper's 17-bit transaction space.
//!
//! The three distributions the paper evaluates, implemented with the exact
//! formulas it describes, plus two extensions used by the ablation benches:
//!
//! * **Uniform** over the full 17-bit space.
//! * **Gaussian** with mean 65 536 and standard deviation 12 000 ("99% of the
//!   generated values lie among the 72 000 (55%) possibilities in the center
//!   of the range"), via the Box–Muller transform.
//! * **Exponential**: "it first generates a random double-precision
//!   floating-point number r in range \[0,1) and then takes the last 17 bits
//!   of −log(1 − r)/0.001" — so 99% of the values lie between 0 and 6 907.
//! * **Zipfian** (extension): heavy-tailed popularity skew, the usual model
//!   for key popularity in key-value workloads.
//! * **Bimodal** (extension): two Gaussian humps, which defeats any
//!   single-split fixed partition and stresses the adaptive CDF estimate.
//! * **Drifting** (extension): a Gaussian hot spot whose centre moves
//!   linearly across the key space over a configurable period — continuous
//!   drift that a one-shot adaptive partition cannot follow.
//! * **Phased** (extension): an exponential concentration near the low end
//!   of the space that jumps to the mirrored high end after a configurable
//!   number of samples — the abrupt phase shift the continuous adaptation
//!   plane is designed to absorb.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::spec::TXN_SPACE_BITS;

/// Size of the sample space (2^17).
const SPACE: u32 = 1 << TXN_SPACE_BITS;

/// Which key distribution to generate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DistributionKind {
    /// Uniform over the 17-bit space.
    Uniform,
    /// Gaussian with the given mean and standard deviation
    /// (paper: mean 65 536, sigma 12 000).
    Gaussian {
        /// Mean of the distribution.
        mean: f64,
        /// Standard deviation (the paper calls this "variance" but the
        /// numbers only make sense as a standard deviation).
        std_dev: f64,
    },
    /// Exponential with the given rate (paper: 0.001).
    Exponential {
        /// Rate parameter λ; larger values concentrate keys near zero.
        rate: f64,
    },
    /// Zipfian over the space with the given skew exponent (extension).
    Zipfian {
        /// Skew exponent s (s = 0 is uniform; s ≈ 1 is classic Zipf).
        skew: f64,
    },
    /// Two Gaussian humps centred at 1/4 and 3/4 of the space (extension).
    Bimodal {
        /// Standard deviation of each hump.
        std_dev: f64,
    },
    /// Gaussian hot spot whose mean sweeps linearly from the bottom to the
    /// top of the space every `period` samples, then wraps (extension).
    Drifting {
        /// Standard deviation of the moving hot spot.
        std_dev: f64,
        /// Samples per full sweep of the key space.
        period: u64,
    },
    /// Exponential concentration near key 0 for the first `shift_after`
    /// samples, then the mirror image concentrated near the top of the
    /// space (extension). Each sampler instance counts its own samples, so
    /// per-producer streams shift independently.
    Phased {
        /// Rate parameter λ of both exponential phases.
        rate: f64,
        /// Samples drawn before the hot range jumps to the high end.
        shift_after: u64,
    },
}

impl DistributionKind {
    /// The paper's three distributions with their exact parameters.
    pub fn paper_distributions() -> [DistributionKind; 3] {
        [
            DistributionKind::Uniform,
            DistributionKind::gaussian_paper(),
            DistributionKind::exponential_paper(),
        ]
    }

    /// Gaussian(μ = 65 536, σ = 12 000), the paper's middle distribution.
    pub fn gaussian_paper() -> DistributionKind {
        DistributionKind::Gaussian {
            mean: 65_536.0,
            std_dev: 12_000.0,
        }
    }

    /// Exponential(λ = 0.001), the paper's narrow distribution.
    pub fn exponential_paper() -> DistributionKind {
        DistributionKind::Exponential { rate: 0.001 }
    }

    /// The phase-shift distribution with the paper's exponential rate,
    /// jumping after `shift_after` samples.
    pub fn phased(shift_after: u64) -> DistributionKind {
        DistributionKind::Phased {
            rate: 0.001,
            shift_after,
        }
    }

    /// Short name used in reports and bench IDs.
    pub fn name(&self) -> &'static str {
        match self {
            DistributionKind::Uniform => "uniform",
            DistributionKind::Gaussian { .. } => "gaussian",
            DistributionKind::Exponential { .. } => "exponential",
            DistributionKind::Zipfian { .. } => "zipfian",
            DistributionKind::Bimodal { .. } => "bimodal",
            DistributionKind::Drifting { .. } => "drifting",
            DistributionKind::Phased { .. } => "phased",
        }
    }
}

impl std::fmt::Display for DistributionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistributionKind::Uniform => write!(f, "uniform"),
            DistributionKind::Gaussian { mean, std_dev } => {
                write!(f, "gaussian(m={mean}, d={std_dev})")
            }
            DistributionKind::Exponential { rate } => write!(f, "exponential(e={rate})"),
            DistributionKind::Zipfian { skew } => write!(f, "zipfian(s={skew})"),
            DistributionKind::Bimodal { std_dev } => write!(f, "bimodal(d={std_dev})"),
            DistributionKind::Drifting { std_dev, period } => {
                write!(f, "drifting(d={std_dev}, p={period})")
            }
            DistributionKind::Phased { rate, shift_after } => {
                write!(f, "phased(e={rate}, shift={shift_after})")
            }
        }
    }
}

impl std::str::FromStr for DistributionKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "uniform" => Ok(DistributionKind::Uniform),
            "gaussian" | "normal" => Ok(DistributionKind::gaussian_paper()),
            "exponential" | "exp" => Ok(DistributionKind::exponential_paper()),
            "zipf" | "zipfian" => Ok(DistributionKind::Zipfian { skew: 0.99 }),
            "bimodal" => Ok(DistributionKind::Bimodal { std_dev: 8_000.0 }),
            "drifting" | "drift" => Ok(DistributionKind::Drifting {
                std_dev: 8_000.0,
                period: 100_000,
            }),
            "phased" | "phase-shift" => Ok(DistributionKind::phased(10_000)),
            other => Err(format!("unknown distribution '{other}'")),
        }
    }
}

/// A seeded sampler over the 17-bit transaction space.
#[derive(Debug, Clone)]
pub struct KeyDistribution {
    kind: DistributionKind,
    rng: SmallRng,
    /// Cached Box–Muller spare value.
    gaussian_spare: Option<f64>,
    /// Precomputed normalization constant for Zipf sampling.
    zipf_norm: f64,
    /// Samples drawn so far — the time axis of the non-stationary
    /// distributions ([`DistributionKind::Drifting`] and
    /// [`DistributionKind::Phased`]).
    drawn: u64,
}

impl KeyDistribution {
    /// Create a sampler with an explicit seed (reproducible streams).
    pub fn new(kind: DistributionKind, seed: u64) -> Self {
        let zipf_norm = match kind {
            DistributionKind::Zipfian { skew } => zipf_normalization(SPACE as usize, skew),
            _ => 0.0,
        };
        KeyDistribution {
            kind,
            rng: SmallRng::seed_from_u64(seed),
            gaussian_spare: None,
            zipf_norm,
            drawn: 0,
        }
    }

    /// The distribution this sampler draws from.
    pub fn kind(&self) -> DistributionKind {
        self.kind
    }

    /// Samples drawn so far (the phase clock of the non-stationary
    /// distributions).
    pub fn drawn(&self) -> u64 {
        self.drawn
    }

    /// Draw one raw 17-bit value.
    pub fn sample_raw(&mut self) -> u32 {
        self.drawn += 1;
        match self.kind {
            DistributionKind::Uniform => self.rng.gen_range(0..SPACE),
            DistributionKind::Gaussian { mean, std_dev } => {
                let z = self.standard_normal();
                let v = mean + std_dev * z;
                // Clamp into the space; the paper's generator effectively does
                // the same by construction (99% of mass is well inside).
                v.clamp(0.0, f64::from(SPACE - 1)) as u32
            }
            DistributionKind::Exponential { rate } => {
                // Paper formula: last 17 bits of -log(1 - r) / rate.
                let r: f64 = self.rng.gen::<f64>();
                let v = (-(1.0 - r).ln()) / rate;
                (v as u64 & u64::from(SPACE - 1)) as u32
            }
            DistributionKind::Zipfian { skew } => self.sample_zipf(skew),
            DistributionKind::Bimodal { std_dev } => {
                let mean = if self.rng.gen_bool(0.5) {
                    f64::from(SPACE) * 0.25
                } else {
                    f64::from(SPACE) * 0.75
                };
                let v = mean + std_dev * self.standard_normal();
                v.clamp(0.0, f64::from(SPACE - 1)) as u32
            }
            DistributionKind::Drifting { std_dev, period } => {
                // Hot spot sweeping the space linearly: sample index i puts
                // the mean at (i mod period) / period of the full range.
                let period = period.max(1);
                let phase = ((self.drawn - 1) % period) as f64 / period as f64;
                let mean = phase * f64::from(SPACE);
                let v = mean + std_dev * self.standard_normal();
                v.clamp(0.0, f64::from(SPACE - 1)) as u32
            }
            DistributionKind::Phased { rate, shift_after } => {
                // Paper's exponential formula near 0, mirrored to the top of
                // the space once the shift point is crossed.
                let r: f64 = self.rng.gen::<f64>();
                let v = (-(1.0 - r).ln()) / rate;
                let low = (v as u64 & u64::from(SPACE - 1)) as u32;
                if self.drawn <= shift_after {
                    low
                } else {
                    SPACE - 1 - low
                }
            }
        }
    }

    /// Draw one 16-bit dictionary key (raw value with the type bit dropped).
    pub fn sample_key(&mut self) -> u32 {
        self.sample_raw() >> 1
    }

    /// Draw `n` raw samples (convenience for tests and the CDF estimator).
    pub fn sample_many(&mut self, n: usize) -> Vec<u32> {
        let mut out = Vec::new();
        self.sample_into(&mut out, n);
        out
    }

    /// Draw `n` raw samples into `out`, clearing it first — the
    /// allocation-free counterpart of [`KeyDistribution::sample_many`] for
    /// hot loops that draw a batch per iteration and can reuse one buffer.
    pub fn sample_into(&mut self, out: &mut Vec<u32>, n: usize) {
        out.clear();
        out.reserve(n);
        for _ in 0..n {
            out.push(self.sample_raw());
        }
    }

    fn standard_normal(&mut self) -> f64 {
        // Box–Muller transform, caching the second value of each pair.
        if let Some(z) = self.gaussian_spare.take() {
            return z;
        }
        loop {
            let u1: f64 = self.rng.gen::<f64>();
            let u2: f64 = self.rng.gen::<f64>();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            self.gaussian_spare = Some(r * theta.sin());
            return r * theta.cos();
        }
    }

    fn sample_zipf(&mut self, skew: f64) -> u32 {
        // Inverse-CDF sampling over the harmonic-number normalization is too
        // slow for a hot path at 2^17 elements, so use the standard
        // rejection-inversion-free approximation: draw u in (0,1], walk the
        // partial sums with a coarse-grained search over precomputed blocks.
        // For benchmark purposes a simpler approach is adequate: draw with
        // the power-law inverse transform and clamp.
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        if (skew - 1.0).abs() < 1e-9 {
            // s = 1: inverse of H(x) ~ ln(x) / ln(N).
            let n = f64::from(SPACE);
            let x = n.powf(u);
            (x as u32).min(SPACE - 1)
        } else {
            let n = f64::from(SPACE);
            let a = 1.0 - skew;
            // Inverse of the continuous approximation of the normalized CDF.
            let x = ((n.powf(a) - 1.0) * u + 1.0).powf(1.0 / a);
            let _ = self.zipf_norm; // kept for the exact-sampler extension
            (x as u32 - 1).min(SPACE - 1)
        }
    }
}

fn zipf_normalization(n: usize, skew: f64) -> f64 {
    // Generalized harmonic number H_{n,s}; only used by tests to check the
    // shape of the approximate sampler.
    (1..=n).map(|k| 1.0 / (k as f64).powf(skew)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    fn mean_of(samples: &[u32]) -> f64 {
        samples.iter().map(|&s| f64::from(s)).sum::<f64>() / samples.len() as f64
    }

    #[test]
    fn uniform_covers_the_space_evenly() {
        let mut d = KeyDistribution::new(DistributionKind::Uniform, 1);
        let samples = d.sample_many(40_000);
        assert!(samples.iter().all(|&s| s < SPACE));
        let mean = mean_of(&samples);
        let expected = f64::from(SPACE) / 2.0;
        assert!(
            (mean - expected).abs() < expected * 0.05,
            "uniform mean {mean} too far from {expected}"
        );
        // Both halves of the space should be roughly equally populated.
        let low = samples.iter().filter(|&&s| s < SPACE / 2).count();
        assert!((low as f64 / samples.len() as f64 - 0.5).abs() < 0.05);
    }

    #[test]
    fn gaussian_matches_paper_concentration() {
        let mut d = KeyDistribution::new(DistributionKind::gaussian_paper(), 2);
        let samples = d.sample_many(40_000);
        // "99% of the generated values lie among the 72,000 possibilities in
        // the center of the range" — i.e. within ±36,000 of the mean.
        let inside = samples
            .iter()
            .filter(|&&s| (f64::from(s) - 65_536.0).abs() <= 36_000.0)
            .count();
        let fraction = inside as f64 / samples.len() as f64;
        assert!(fraction > 0.985, "only {fraction} inside the centre band");
        let mean = mean_of(&samples);
        assert!((mean - 65_536.0).abs() < 1_500.0, "gaussian mean {mean}");
    }

    #[test]
    fn exponential_matches_paper_concentration() {
        let mut d = KeyDistribution::new(DistributionKind::exponential_paper(), 3);
        let samples = d.sample_many(40_000);
        // "99% of the generated values lie between 0 and 6907".
        let inside = samples.iter().filter(|&&s| s <= 6_907).count();
        let fraction = inside as f64 / samples.len() as f64;
        assert!(fraction > 0.985, "only {fraction} below 6907");
    }

    #[test]
    fn zipfian_is_head_heavy() {
        let mut d = KeyDistribution::new(DistributionKind::Zipfian { skew: 0.99 }, 4);
        let samples = d.sample_many(40_000);
        let head = samples.iter().filter(|&&s| s < SPACE / 100).count();
        let tail = samples.iter().filter(|&&s| s >= SPACE / 2).count();
        assert!(
            head > tail,
            "zipf head ({head}) should outweigh tail ({tail})"
        );
    }

    #[test]
    fn bimodal_has_two_humps() {
        let mut d = KeyDistribution::new(DistributionKind::Bimodal { std_dev: 4_000.0 }, 5);
        let samples = d.sample_many(40_000);
        let quarter = (SPACE / 4) as f64;
        let near_low = samples
            .iter()
            .filter(|&&s| (f64::from(s) - quarter).abs() < 16_000.0)
            .count();
        let near_high = samples
            .iter()
            .filter(|&&s| (f64::from(s) - 3.0 * quarter).abs() < 16_000.0)
            .count();
        let middle = samples
            .iter()
            .filter(|&&s| (f64::from(s) - 2.0 * quarter).abs() < 8_000.0)
            .count();
        assert!(near_low > middle && near_high > middle);
        // Roughly balanced humps.
        let ratio = near_low as f64 / near_high as f64;
        assert!(ratio > 0.8 && ratio < 1.25, "hump ratio {ratio}");
    }

    #[test]
    fn drifting_hot_spot_moves_across_the_space() {
        let mut d = KeyDistribution::new(
            DistributionKind::Drifting {
                std_dev: 2_000.0,
                period: 10_000,
            },
            6,
        );
        let early = mean_of(&d.sample_many(1_000));
        let _ = d.sample_many(6_000); // advance the phase clock
        let late = mean_of(&d.sample_many(1_000));
        assert!(
            late > early + f64::from(SPACE) * 0.3,
            "hot spot should have moved up: early {early}, late {late}"
        );
        assert_eq!(d.drawn(), 8_000);
    }

    #[test]
    fn phased_distribution_jumps_after_the_shift_point() {
        let mut d = KeyDistribution::new(DistributionKind::phased(5_000), 7);
        let before = d.sample_many(5_000);
        let after = d.sample_many(5_000);
        // Phase 1 mirrors the paper's exponential: 99% below 6 907.
        let low = before.iter().filter(|&&s| s <= 6_907).count();
        assert!(low as f64 / before.len() as f64 > 0.985, "{low} low keys");
        // Phase 2 is the mirror image: 99% within 6 907 of the top.
        let high = after.iter().filter(|&&s| s >= SPACE - 1 - 6_907).count();
        assert!(high as f64 / after.len() as f64 > 0.985, "{high} high keys");
    }

    #[test]
    fn sample_into_reuses_the_buffer_and_matches_sample_many() {
        let mut a = KeyDistribution::new(DistributionKind::gaussian_paper(), 31);
        let mut b = KeyDistribution::new(DistributionKind::gaussian_paper(), 31);
        let mut buf = Vec::new();
        a.sample_into(&mut buf, 500);
        assert_eq!(buf, b.sample_many(500));
        let capacity = buf.capacity();
        a.sample_into(&mut buf, 400);
        assert_eq!(buf.len(), 400);
        assert_eq!(buf.capacity(), capacity, "refill must not reallocate");
        assert_eq!(buf, b.sample_many(400));
    }

    #[test]
    fn sample_key_strips_the_type_bit() {
        let mut d = KeyDistribution::new(DistributionKind::Uniform, 6);
        for _ in 0..1_000 {
            assert!(d.sample_key() < (1 << 16));
        }
    }

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = KeyDistribution::new(DistributionKind::gaussian_paper(), 42);
        let mut b = KeyDistribution::new(DistributionKind::gaussian_paper(), 42);
        assert_eq!(a.sample_many(100), b.sample_many(100));
        let mut c = KeyDistribution::new(DistributionKind::gaussian_paper(), 43);
        assert_ne!(a.sample_many(100), c.sample_many(100));
    }

    #[test]
    fn parsing_and_display() {
        assert_eq!(
            DistributionKind::from_str("uniform").unwrap(),
            DistributionKind::Uniform
        );
        assert_eq!(
            DistributionKind::from_str("gaussian").unwrap().name(),
            "gaussian"
        );
        assert!(DistributionKind::from_str("nope").is_err());
        assert_eq!(
            DistributionKind::from_str("drifting").unwrap().name(),
            "drifting"
        );
        assert_eq!(
            DistributionKind::from_str("phased").unwrap().name(),
            "phased"
        );
        assert!(DistributionKind::phased(42)
            .to_string()
            .contains("shift=42"));
        assert!(DistributionKind::exponential_paper()
            .to_string()
            .contains("0.001"));
        for kind in DistributionKind::paper_distributions() {
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn zipf_normalization_is_monotone_in_n() {
        assert!(zipf_normalization(100, 1.0) < zipf_normalization(200, 1.0));
    }
}
