//! Checkpoint files: an atomically replaced snapshot of structure state at
//! a recorded log position.
//!
//! The file is written to a temporary name, fsynced, renamed over
//! `checkpoint`, and the directory is fsynced — so a crash at any point
//! leaves either the old checkpoint or the new one, never a torn mix.
//! Readers validate a magic number and a CRC over the position + payload
//! and fall back to "no checkpoint" (full-log replay) on any mismatch.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

use crate::record::crc32;
use crate::segment::sync_dir;

/// Magic bytes opening every checkpoint file.
const MAGIC: &[u8; 8] = b"KATMECKP";

/// File name of the live checkpoint within a log directory.
pub const CHECKPOINT_FILE: &str = "checkpoint";

/// File name of the in-flight temporary used during atomic replacement.
pub const CHECKPOINT_TMP: &str = "checkpoint.tmp";

/// A decoded checkpoint: structure state as of log position `position`
/// (every record with `seq <= position` is reflected in `payload`; later
/// records must be replayed over it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Last log sequence number the snapshot is guaranteed to cover.
    pub position: u64,
    /// Opaque structure snapshot (the caller's encoding).
    pub payload: Vec<u8>,
}

fn checkpoint_crc(position: u64, payload: &[u8]) -> u32 {
    let mut body = Vec::with_capacity(8 + payload.len());
    body.extend_from_slice(&position.to_le_bytes());
    body.extend_from_slice(payload);
    crc32(&body)
}

/// Atomically write a checkpoint into `dir`, replacing any previous one.
///
/// When `crash_mid_checkpoint` is set the process aborts after the
/// temporary file is written but before the rename — a fault-injection
/// point for crash tests: recovery must then still see the *previous*
/// checkpoint (or none) and a stray `checkpoint.tmp`, which it ignores.
pub fn write_checkpoint(
    dir: &Path,
    position: u64,
    payload: &[u8],
    crash_mid_checkpoint: bool,
) -> io::Result<()> {
    let tmp_path = dir.join(CHECKPOINT_TMP);
    let mut tmp = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp_path)?;
    tmp.write_all(MAGIC)?;
    tmp.write_all(&checkpoint_crc(position, payload).to_le_bytes())?;
    tmp.write_all(&position.to_le_bytes())?;
    tmp.write_all(&(payload.len() as u32).to_le_bytes())?;
    tmp.write_all(payload)?;
    tmp.sync_data()?;
    drop(tmp);
    if crash_mid_checkpoint {
        // Fault injection: die with the new checkpoint staged but not yet
        // visible. The rename below must never have happened.
        std::process::abort();
    }
    fs::rename(&tmp_path, dir.join(CHECKPOINT_FILE))?;
    sync_dir(dir)
}

/// Read and validate the checkpoint in `dir`. Returns `Ok(None)` when no
/// checkpoint exists or the file fails validation (recovery then replays
/// the whole log); returns `Err` only for I/O failures other than
/// not-found.
pub fn read_checkpoint(dir: &Path) -> io::Result<Option<Checkpoint>> {
    let path = dir.join(CHECKPOINT_FILE);
    let bytes = match fs::read(&path) {
        Ok(bytes) => bytes,
        Err(error) if error.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(error) => return Err(error),
    };
    Ok(decode_checkpoint(&bytes))
}

fn decode_checkpoint(bytes: &[u8]) -> Option<Checkpoint> {
    let header = 8 + 4 + 8 + 4;
    if bytes.len() < header || &bytes[0..8] != MAGIC {
        return None;
    }
    let crc = u32::from_le_bytes(bytes[8..12].try_into().ok()?);
    let position = u64::from_le_bytes(bytes[12..20].try_into().ok()?);
    let len = u32::from_le_bytes(bytes[20..24].try_into().ok()?) as usize;
    if bytes.len() != header + len {
        return None;
    }
    let payload = &bytes[header..];
    if checkpoint_crc(position, payload) != crc {
        return None;
    }
    Some(Checkpoint {
        position,
        payload: payload.to_vec(),
    })
}

/// Remove a stale `checkpoint.tmp` left by a crash between the temporary
/// write and the rename. Called during recovery; missing file is fine.
pub fn remove_stale_tmp(dir: &Path) -> io::Result<()> {
    match fs::remove_file(dir.join(CHECKPOINT_TMP)) {
        Ok(()) => Ok(()),
        Err(error) if error.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(error) => Err(error),
    }
}

/// Open a file handle on the log directory — exists so callers can probe
/// directory accessibility early with a clear error.
pub fn probe_dir(dir: &Path) -> io::Result<()> {
    File::open(dir).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("katme-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip_and_replace() {
        let dir = temp_dir("roundtrip");
        assert_eq!(read_checkpoint(&dir).unwrap(), None);
        write_checkpoint(&dir, 42, b"state-v1", false).unwrap();
        assert_eq!(
            read_checkpoint(&dir).unwrap(),
            Some(Checkpoint {
                position: 42,
                payload: b"state-v1".to_vec()
            })
        );
        write_checkpoint(&dir, 99, b"state-v2", false).unwrap();
        assert_eq!(read_checkpoint(&dir).unwrap().unwrap().position, 99);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checkpoint_reads_as_none() {
        let dir = temp_dir("corrupt");
        write_checkpoint(&dir, 7, b"payload", false).unwrap();
        let path = dir.join(CHECKPOINT_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(read_checkpoint(&dir).unwrap(), None);
        // Truncated file is also rejected.
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(read_checkpoint(&dir).unwrap(), None);
        // Wrong magic.
        fs::write(&path, b"NOTMAGIC").unwrap();
        assert_eq!(read_checkpoint(&dir).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_tmp_is_removable_and_ignored() {
        let dir = temp_dir("staletmp");
        fs::write(dir.join(CHECKPOINT_TMP), b"half-written").unwrap();
        assert_eq!(read_checkpoint(&dir).unwrap(), None);
        remove_stale_tmp(&dir).unwrap();
        remove_stale_tmp(&dir).unwrap(); // Idempotent.
        assert!(!dir.join(CHECKPOINT_TMP).exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}
