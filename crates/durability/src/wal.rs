//! The write-ahead log proper: a group-commit writer thread over segment
//! files, plus recovery on open.
//!
//! Committers hand their serialized write-set to [`Wal::enqueue`] (cheap:
//! one mutex push + condvar signal) and later block in
//! [`Wal::wait_durable`] until the dedicated writer thread has flushed a
//! group covering their sequence number. The writer drains *all* pending
//! records each wakeup, writes them as one append, and issues one
//! `fdatasync` for the whole group — so fsyncs-per-commit falls as
//! concurrency rises.

use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use crate::checkpoint::{read_checkpoint, remove_stale_tmp, write_checkpoint, Checkpoint};
use crate::record::{decode_records, encode_record};
use crate::segment::{list_segments, SegmentWriter};
use crate::stats::{DurabilityStats, DurabilityView};

/// Fault-injection points for crash tests. When set in [`WalConfig`], the
/// process calls `std::process::abort()` at the named point — after
/// `crash_after` normal occurrences — leaving the on-disk state exactly as
/// a power failure there would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Abort after writing only half of a group's bytes (torn record on
    /// disk, nothing acknowledged).
    MidAppend,
    /// Abort after writing a full group but before its fsync (records may
    /// or may not survive; none were acknowledged).
    PreFsync,
    /// Abort after staging a checkpoint temporary but before the atomic
    /// rename (the previous checkpoint must still win).
    MidCheckpoint,
}

/// Configuration for [`Wal::open`].
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding segments and the checkpoint. Created if missing.
    pub dir: PathBuf,
    /// Rotate to a new segment once the current one reaches this many
    /// bytes.
    pub segment_bytes: u64,
    /// Issue a real `fdatasync` per group. Disable only for tests or
    /// throughput experiments that accept losing the tail on power loss.
    pub fsync: bool,
    /// Optional fault-injection point (crash tests only).
    pub crash_point: Option<CrashPoint>,
    /// How many normal occurrences of the crash point's action to allow
    /// before aborting (groups flushed for the append/fsync points,
    /// checkpoints completed for `MidCheckpoint`).
    pub crash_after: u64,
}

impl WalConfig {
    /// Defaults: 8 MiB segments, real fsyncs, no fault injection.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            segment_bytes: 8 * 1024 * 1024,
            fsync: true,
            crash_point: None,
            crash_after: 0,
        }
    }

    /// Override the segment rotation threshold (clamped to ≥ 4 KiB).
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes.max(4096);
        self
    }

    /// Enable or disable the per-group fsync.
    pub fn with_fsync(mut self, fsync: bool) -> Self {
        self.fsync = fsync;
        self
    }

    /// Install a fault-injection crash point firing after `after` normal
    /// occurrences.
    pub fn with_crash_point(mut self, point: CrashPoint, after: u64) -> Self {
        self.crash_point = Some(point);
        self.crash_after = after;
        self
    }
}

/// What [`Wal::open`] recovered from an existing log directory: the caller
/// restores `checkpoint` (if any), then replays `records` in order.
#[derive(Debug, Default)]
pub struct RecoveredLog {
    /// The latest valid checkpoint, if one exists.
    pub checkpoint: Option<Checkpoint>,
    /// Committed records past the checkpoint position, in log order.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Highest sequence number that survived (0 when the log was empty).
    pub last_seq: u64,
    /// Torn-tail bytes truncated during the scan.
    pub truncated_bytes: u64,
}

struct WalState {
    /// Pre-framed records awaiting the writer thread, encoded at enqueue
    /// time so the caller's payload buffer can be recycled immediately and
    /// the writer appends one contiguous byte run per group.
    pending_bytes: Vec<u8>,
    /// Records currently encoded in `pending_bytes`.
    pending_count: u64,
    /// Sequence number of the first record in `pending_bytes` (meaningful
    /// only while `pending_count > 0`).
    pending_first_seq: u64,
    next_seq: u64,
    durable_seq: u64,
    active_first_seq: u64,
    shutdown: bool,
    io_error: Option<String>,
}

struct WalShared {
    state: Mutex<WalState>,
    work: Condvar,
    durable: Condvar,
    stats: Arc<DurabilityStats>,
    config: WalConfig,
}

/// Handle to an open write-ahead log. Dropping it shuts the writer thread
/// down after a final flush.
pub struct Wal {
    shared: Arc<WalShared>,
    writer: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.shared.config.dir)
            .finish_non_exhaustive()
    }
}

impl Wal {
    /// Open (or create) the log in `config.dir`, running recovery first:
    /// scan segments in order, truncate any torn tail, delete segments
    /// past the torn point, and return the checkpoint plus the committed
    /// suffix for the caller to replay. The group-commit writer thread is
    /// running when this returns.
    pub fn open(config: WalConfig) -> io::Result<(Wal, RecoveredLog)> {
        std::fs::create_dir_all(&config.dir)?;
        remove_stale_tmp(&config.dir)?;
        let checkpoint = read_checkpoint(&config.dir)?;
        let checkpoint_position = checkpoint.as_ref().map_or(0, |c| c.position);

        let mut recovered = RecoveredLog {
            checkpoint,
            ..RecoveredLog::default()
        };
        let segments = list_segments(&config.dir)?;
        let mut torn_at: Option<usize> = None;
        let mut last_segment: Option<(u64, PathBuf, u64)> = None;
        for (index, (first_seq, path)) in segments.iter().enumerate() {
            let bytes = std::fs::read(path)?;
            let decoded = decode_records(&bytes);
            for (seq, payload) in decoded.records {
                recovered.last_seq = seq;
                if seq > checkpoint_position {
                    recovered.records.push((seq, payload));
                }
            }
            if decoded.torn {
                // Truncate the torn tail so a later recovery scan does not
                // stop here again, and drop every later segment — records
                // past a torn point were never acknowledged.
                recovered.truncated_bytes += (bytes.len() - decoded.valid_bytes) as u64;
                let file = std::fs::OpenOptions::new().write(true).open(path)?;
                file.set_len(decoded.valid_bytes as u64)?;
                file.sync_data()?;
                torn_at = Some(index);
                last_segment = Some((*first_seq, path.clone(), decoded.valid_bytes as u64));
                break;
            }
            last_segment = Some((*first_seq, path.clone(), decoded.valid_bytes as u64));
        }
        if let Some(index) = torn_at {
            for (_, path) in &segments[index + 1..] {
                recovered.truncated_bytes += std::fs::metadata(path).map_or(0, |m| m.len());
                std::fs::remove_file(path)?;
            }
        }

        let next_seq = recovered.last_seq.max(checkpoint_position) + 1;
        let (segment, created) = match last_segment {
            Some((first_seq, path, valid_bytes)) => {
                (SegmentWriter::reopen(path, first_seq, valid_bytes)?, false)
            }
            None => (SegmentWriter::create(&config.dir, next_seq)?, true),
        };

        let stats = Arc::new(DurabilityStats::default());
        stats.truncated_bytes.store(
            recovered.truncated_bytes,
            std::sync::atomic::Ordering::Relaxed,
        );
        stats.segments.store(
            segments.len() as u64 + u64::from(created)
                - torn_at.map_or(0, |index| (segments.len() - index - 1) as u64),
            std::sync::atomic::Ordering::Relaxed,
        );
        if checkpoint_position > 0 {
            stats
                .checkpoint_position
                .store(checkpoint_position, std::sync::atomic::Ordering::Relaxed);
        }

        let shared = Arc::new(WalShared {
            state: Mutex::new(WalState {
                pending_bytes: Vec::new(),
                pending_count: 0,
                pending_first_seq: 0,
                next_seq,
                durable_seq: next_seq - 1,
                active_first_seq: segment.first_seq(),
                shutdown: false,
                io_error: None,
            }),
            work: Condvar::new(),
            durable: Condvar::new(),
            stats,
            config,
        });

        let writer_shared = Arc::clone(&shared);
        let writer = std::thread::Builder::new()
            .name("katme-wal-writer".into())
            .spawn(move || writer_loop(writer_shared, segment))
            .map_err(io::Error::other)?;

        Ok((
            Wal {
                shared,
                writer: Mutex::new(Some(writer)),
            },
            recovered,
        ))
    }

    /// Append a committed write-set to the log, returning its sequence
    /// number (the ticket for [`Wal::wait_durable`]). Cheap: the record is
    /// framed straight into the shared staging buffer (a short memcpy)
    /// under one mutex, plus a condvar signal — safe to call while holding
    /// STM write locks. The payload is borrowed, so the caller keeps (and
    /// can recycle) its buffer.
    pub fn enqueue(&self, payload: &[u8]) -> u64 {
        let mut state = self.shared.state.lock();
        let seq = state.next_seq;
        state.next_seq += 1;
        if state.pending_count == 0 {
            state.pending_first_seq = seq;
        }
        state.pending_count += 1;
        let state = &mut *state;
        encode_record(seq, payload, &mut state.pending_bytes);
        self.shared.work.notify_one();
        seq
    }

    /// Block until the record with sequence number `seq` is fsynced (its
    /// group's sync completed). Must not be called while holding STM
    /// locks. Fails if the writer thread hit an I/O error.
    pub fn wait_durable(&self, seq: u64) -> io::Result<()> {
        let mut state = self.shared.state.lock();
        while state.durable_seq < seq {
            if let Some(message) = &state.io_error {
                return Err(io::Error::other(message.clone()));
            }
            if state.shutdown {
                return Err(io::Error::other("wal shut down before sync"));
            }
            state = self.shared.durable.wait(state);
        }
        Ok(())
    }

    /// Flush everything enqueued so far and wait for it to be durable.
    pub fn sync_all(&self) -> io::Result<()> {
        let target = {
            let state = self.shared.state.lock();
            state.next_seq - 1
        };
        let durable = { self.shared.state.lock().durable_seq };
        if durable >= target {
            return Ok(());
        }
        self.wait_durable(target)
    }

    /// Highest sequence number handed out so far (0 before the first
    /// enqueue on a fresh log).
    pub fn last_enqueued(&self) -> u64 {
        self.shared.state.lock().next_seq - 1
    }

    /// Begin a fuzzy checkpoint: returns the position `P` the caller must
    /// pass back to [`Wal::commit_checkpoint`] *after* snapshotting. Any
    /// record with `seq <= P` was fully published before this call
    /// returns, so the caller's snapshot is guaranteed to contain it.
    pub fn begin_checkpoint(&self) -> u64 {
        self.last_enqueued()
    }

    /// Finish a checkpoint: atomically persist `payload` as the snapshot
    /// covering log position `position`, then prune segments the
    /// checkpoint fully covers.
    pub fn commit_checkpoint(&self, position: u64, payload: &[u8]) -> io::Result<()> {
        let crash = self.shared.config.crash_point == Some(CrashPoint::MidCheckpoint)
            && self
                .shared
                .stats
                .checkpoints
                .load(std::sync::atomic::Ordering::Relaxed)
                >= self.shared.config.crash_after;
        write_checkpoint(&self.shared.config.dir, position, payload, crash)?;
        self.shared.stats.record_checkpoint(position);
        self.prune_segments(position)?;
        Ok(())
    }

    /// Delete segments whose every record is covered by a checkpoint at
    /// `position`. The active segment and the segment holding
    /// `position + 1` onward are kept.
    fn prune_segments(&self, position: u64) -> io::Result<()> {
        let active_first_seq = self.shared.state.lock().active_first_seq;
        let segments = list_segments(&self.shared.config.dir)?;
        for pair in segments.windows(2) {
            let (first_seq, path) = &pair[0];
            let (next_first_seq, _) = &pair[1];
            if *next_first_seq <= position + 1 && *first_seq < active_first_seq {
                std::fs::remove_file(path)?;
                self.shared
                    .stats
                    .pruned_segments
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Add committer wall-clock time spent blocked in group-commit waits
    /// (recorded by the caller, which owns the timing scope).
    pub fn record_group_wait(&self, nanos: u64) {
        self.shared.stats.record_group_wait(nanos);
    }

    /// Snapshot the durability counters.
    pub fn view(&self) -> DurabilityView {
        self.shared.stats.view(self.last_enqueued())
    }

    /// Shared counters handle (for recovery bookkeeping by the embedder).
    pub fn stats(&self) -> &Arc<DurabilityStats> {
        &self.shared.stats
    }

    /// Flush pending records and stop the writer thread. Idempotent; also
    /// runs on drop.
    pub fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock();
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        if let Some(handle) = self.writer.lock().take() {
            let _ = handle.join();
        }
        self.shared.durable.notify_all();
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn writer_loop(shared: Arc<WalShared>, mut segment: SegmentWriter) {
    let mut groups_flushed: u64 = 0;
    // Draining swaps this buffer with the staging buffer, so the two
    // capacities ping-pong between enqueuers and the writer and
    // steady-state group commit performs no allocation.
    let mut buffer: Vec<u8> = Vec::new();
    loop {
        let (count, first_seq) = {
            let mut state = shared.state.lock();
            while state.pending_count == 0 && !state.shutdown {
                state = shared.work.wait(state);
            }
            if state.pending_count == 0 && state.shutdown {
                return;
            }
            buffer.clear();
            std::mem::swap(&mut buffer, &mut state.pending_bytes);
            let count = state.pending_count;
            let first_seq = state.pending_first_seq;
            state.pending_count = 0;
            (count, first_seq)
        };

        match flush_group(
            &shared,
            &mut segment,
            &buffer,
            count,
            first_seq,
            groups_flushed,
        ) {
            Ok(()) => {
                groups_flushed += 1;
                let last_seq = first_seq + count - 1;
                let mut state = shared.state.lock();
                state.durable_seq = last_seq;
                state.active_first_seq = segment.first_seq();
                drop(state);
                shared.durable.notify_all();
            }
            Err(error) => {
                let mut state = shared.state.lock();
                state.io_error = Some(error.to_string());
                drop(state);
                shared.durable.notify_all();
                return;
            }
        }
    }
}

fn flush_group(
    shared: &WalShared,
    segment: &mut SegmentWriter,
    buffer: &[u8],
    count: u64,
    first_seq: u64,
    groups_flushed: u64,
) -> io::Result<()> {
    if segment.bytes() >= shared.config.segment_bytes {
        *segment = SegmentWriter::create(&shared.config.dir, first_seq)?;
        shared
            .stats
            .segments
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    let crash_now = |point: CrashPoint| {
        shared.config.crash_point == Some(point) && groups_flushed >= shared.config.crash_after
    };

    if crash_now(CrashPoint::MidAppend) {
        // Fault injection: leave a torn record on disk and die. The
        // partial write is a plain syscall, so the bytes survive the
        // process even without a sync.
        let half = buffer.len() / 2 + 1;
        segment.append(&buffer[..half.min(buffer.len())])?;
        let _ = io::stderr().flush();
        std::process::abort();
    }

    segment.append(buffer)?;

    if crash_now(CrashPoint::PreFsync) {
        // Fault injection: full group written but never synced — the OS
        // may or may not persist it; either way nothing was acknowledged.
        let _ = io::stderr().flush();
        std::process::abort();
    }

    if shared.config.fsync {
        segment.sync()?;
    }
    shared.stats.record_group(count, buffer.len() as u64);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("katme-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn enqueue_wait_recover_round_trip() {
        let dir = temp_dir("roundtrip");
        {
            let (wal, recovered) = Wal::open(WalConfig::new(&dir)).unwrap();
            assert!(recovered.checkpoint.is_none());
            assert!(recovered.records.is_empty());
            for index in 0..10u64 {
                let seq = wal.enqueue(&index.to_le_bytes());
                wal.wait_durable(seq).unwrap();
            }
            let view = wal.view();
            assert_eq!(view.appends, 10);
            assert!(view.fsyncs >= 1 && view.fsyncs <= 10);
            wal.shutdown();
        }
        let (wal, recovered) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert_eq!(recovered.last_seq, 10);
        assert_eq!(recovered.records.len(), 10);
        for (index, (seq, payload)) in recovered.records.iter().enumerate() {
            assert_eq!(*seq, index as u64 + 1);
            assert_eq!(payload, &(index as u64).to_le_bytes().to_vec());
        }
        // New appends continue the sequence.
        assert_eq!(wal.enqueue(&[0xAB]), 11);
        wal.sync_all().unwrap();
        drop(wal);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_batches_concurrent_enqueues() {
        let dir = temp_dir("grouping");
        let (wal, _) = Wal::open(WalConfig::new(&dir)).unwrap();
        let wal = Arc::new(wal);
        let threads: Vec<_> = (0..8u64)
            .map(|thread_index| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    for op in 0..50u64 {
                        let seq = wal.enqueue(&[thread_index as u8, op as u8]);
                        wal.wait_durable(seq).unwrap();
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().unwrap();
        }
        let view = wal.view();
        assert_eq!(view.appends, 400);
        // Group commit must have merged at least some concurrent commits.
        assert!(
            view.fsyncs <= view.appends,
            "fsyncs {} > appends {}",
            view.fsyncs,
            view.appends
        );
        drop(wal);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_once_and_for_all() {
        let dir = temp_dir("torntail");
        {
            let (wal, _) = Wal::open(WalConfig::new(&dir)).unwrap();
            for index in 0..5u64 {
                let seq = wal.enqueue(&[index as u8; 16]);
                wal.wait_durable(seq).unwrap();
            }
            wal.shutdown();
        }
        // Simulate a torn append: garbage on the tail of the only segment.
        let segments = list_segments(&dir).unwrap();
        assert_eq!(segments.len(), 1);
        let mut bytes = std::fs::read(&segments[0].1).unwrap();
        let clean_len = bytes.len();
        bytes.extend_from_slice(&[0x55; 7]); // Partial header: torn.
        std::fs::write(&segments[0].1, &bytes).unwrap();

        let (wal, recovered) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert_eq!(recovered.records.len(), 5);
        assert_eq!(recovered.last_seq, 5);
        assert_eq!(recovered.truncated_bytes, 7);
        assert_eq!(
            std::fs::metadata(&segments[0].1).unwrap().len(),
            clean_len as u64,
            "torn tail must be physically truncated"
        );
        drop(wal);
        // A second recovery sees a clean log.
        let (wal, recovered) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert_eq!(recovered.truncated_bytes, 0);
        assert_eq!(recovered.records.len(), 5);
        drop(wal);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_creates_segments_and_checkpoint_prunes_them() {
        let dir = temp_dir("rotation");
        let (wal, _) = Wal::open(WalConfig::new(&dir).with_segment_bytes(4096)).unwrap();
        // Each record is ~4 KiB of payload, forcing a rotation per group.
        for index in 0..6u64 {
            let seq = wal.enqueue(&[index as u8; 4096]);
            wal.wait_durable(seq).unwrap();
        }
        let segments_before = list_segments(&dir).unwrap().len();
        assert!(
            segments_before >= 2,
            "expected rotation, got {segments_before}"
        );

        let position = wal.begin_checkpoint();
        assert_eq!(position, 6);
        wal.commit_checkpoint(position, b"snapshot-of-everything")
            .unwrap();
        let segments_after = list_segments(&dir).unwrap().len();
        assert!(
            segments_after < segments_before,
            "checkpoint should prune covered segments ({segments_before} -> {segments_after})"
        );
        drop(wal);

        // Recovery now restores from the checkpoint with an empty suffix.
        let (wal, recovered) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert_eq!(recovered.checkpoint.as_ref().map(|c| c.position), Some(6));
        assert!(recovered.records.is_empty());
        assert_eq!(wal.enqueue(&[1]), 7);
        wal.sync_all().unwrap();
        drop(wal);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_replay_suffix_only() {
        let dir = temp_dir("suffix");
        let (wal, _) = Wal::open(WalConfig::new(&dir)).unwrap();
        for index in 0..4u64 {
            let seq = wal.enqueue(&[index as u8]);
            wal.wait_durable(seq).unwrap();
        }
        let position = wal.begin_checkpoint();
        wal.commit_checkpoint(position, b"state@4").unwrap();
        for index in 4..7u64 {
            let seq = wal.enqueue(&[index as u8]);
            wal.wait_durable(seq).unwrap();
        }
        drop(wal);
        let (wal, recovered) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert_eq!(recovered.checkpoint.unwrap().payload, b"state@4");
        assert_eq!(
            recovered
                .records
                .iter()
                .map(|(seq, _)| *seq)
                .collect::<Vec<_>>(),
            vec![5, 6, 7]
        );
        drop(wal);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_all_on_idle_log_returns_immediately() {
        let dir = temp_dir("idle");
        let (wal, _) = Wal::open(WalConfig::new(&dir)).unwrap();
        wal.sync_all().unwrap();
        drop(wal);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
