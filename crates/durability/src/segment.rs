//! Segment files: the log is a directory of append-only files named by the
//! first sequence number they hold (`wal-{first_seq:016x}.seg`). The writer
//! rotates to a new segment once the current one passes the configured size;
//! checkpointing prunes whole segments whose records the checkpoint covers.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// File name for the segment whose first record has sequence `first_seq`.
pub fn segment_name(first_seq: u64) -> String {
    format!("wal-{first_seq:016x}.seg")
}

/// Parse a segment file name back into its first sequence number.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// List the segment files in `dir`, sorted by first sequence number.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        if let Some(first_seq) = name.to_str().and_then(parse_segment_name) {
            segments.push((first_seq, entry.path()));
        }
    }
    segments.sort_by_key(|(first_seq, _)| *first_seq);
    Ok(segments)
}

/// The currently open segment the log-writer appends to.
#[derive(Debug)]
pub struct SegmentWriter {
    file: File,
    path: PathBuf,
    first_seq: u64,
    bytes: u64,
}

impl SegmentWriter {
    /// Create a fresh segment in `dir` whose first record will be
    /// `first_seq`. Fails if the file already exists — sequence numbers
    /// never repeat within one log directory.
    pub fn create(dir: &Path, first_seq: u64) -> io::Result<Self> {
        let path = dir.join(segment_name(first_seq));
        let file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)?;
        Ok(Self {
            file,
            path,
            first_seq,
            bytes: 0,
        })
    }

    /// Re-open an existing segment for appending, e.g. after recovery
    /// truncated its torn tail. `bytes` must be the current valid length.
    pub fn reopen(path: PathBuf, first_seq: u64, bytes: u64) -> io::Result<Self> {
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(Self {
            file,
            path,
            first_seq,
            bytes,
        })
    }

    /// Append raw record bytes (already framed) to the segment.
    pub fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.write_all(bytes)?;
        self.bytes += bytes.len() as u64;
        Ok(())
    }

    /// Flush the segment's data to stable storage (`fdatasync`).
    pub fn sync(&self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// First sequence number of this segment.
    pub fn first_seq(&self) -> u64 {
        self.first_seq
    }

    /// Bytes written to this segment so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Fsync a directory so renames/creations within it are durable. Some
/// filesystems don't support syncing directories; those errors are ignored
/// (the data-file syncs still hold).
pub fn sync_dir(dir: &Path) -> io::Result<()> {
    match File::open(dir) {
        Ok(handle) => match handle.sync_all() {
            Ok(()) => Ok(()),
            Err(error) if error.raw_os_error() == Some(libc_einval()) => Ok(()),
            Err(error) => Err(error),
        },
        Err(error) => Err(error),
    }
}

const fn libc_einval() -> i32 {
    22
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_names_round_trip() {
        assert_eq!(segment_name(0), "wal-0000000000000000.seg");
        assert_eq!(parse_segment_name("wal-0000000000000000.seg"), Some(0));
        assert_eq!(
            parse_segment_name(&segment_name(0xDEAD_BEEF)),
            Some(0xDEAD_BEEF)
        );
        assert_eq!(parse_segment_name("wal-xyz.seg"), None);
        assert_eq!(parse_segment_name("checkpoint"), None);
        assert_eq!(parse_segment_name("wal-00.seg"), None);
    }

    #[test]
    fn list_segments_sorts_and_filters() {
        let dir = std::env::temp_dir().join(format!(
            "katme-segment-test-{}-{}",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(segment_name(16)), b"").unwrap();
        std::fs::write(dir.join(segment_name(1)), b"").unwrap();
        std::fs::write(dir.join("checkpoint"), b"").unwrap();
        let segments = list_segments(&dir).unwrap();
        assert_eq!(
            segments.iter().map(|(seq, _)| *seq).collect::<Vec<_>>(),
            vec![1, 16]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writer_appends_and_tracks_bytes() {
        let dir = std::env::temp_dir().join(format!("katme-segwriter-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut writer = SegmentWriter::create(&dir, 1).unwrap();
        writer.append(b"hello").unwrap();
        writer.append(b" world").unwrap();
        writer.sync().unwrap();
        assert_eq!(writer.bytes(), 11);
        assert_eq!(std::fs::read(writer.path()).unwrap(), b"hello world");
        // Reopen for append and continue.
        let path = writer.path().to_path_buf();
        drop(writer);
        let mut writer = SegmentWriter::reopen(path, 1, 11).unwrap();
        writer.append(b"!").unwrap();
        assert_eq!(writer.bytes(), 12);
        assert_eq!(std::fs::read(writer.path()).unwrap(), b"hello world!");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
