//! Durability-plane counters: lock-free atomics updated by the log-writer
//! and checkpointer threads, snapshotted into an immutable [`DurabilityView`]
//! for the facade's stats/shutdown reports.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared mutable counters for the WAL and checkpointer. All updates use
/// relaxed atomics — the counters are monotonic telemetry, not
/// synchronization.
#[derive(Debug, Default)]
pub struct DurabilityStats {
    /// Records appended to the log (one per logged commit).
    pub appends: AtomicU64,
    /// Physical `fdatasync` calls issued (one per commit group).
    pub fsyncs: AtomicU64,
    /// Bytes written to log segments (framing included).
    pub bytes: AtomicU64,
    /// Sum of group sizes, for the mean-group-size derivation.
    pub group_records: AtomicU64,
    /// Checkpoints completed.
    pub checkpoints: AtomicU64,
    /// Log position (sequence number) of the latest checkpoint.
    pub checkpoint_position: AtomicU64,
    /// Records replayed during recovery at startup.
    pub replayed: AtomicU64,
    /// Bytes of torn tail truncated during recovery.
    pub truncated_bytes: AtomicU64,
    /// Segment files created.
    pub segments: AtomicU64,
    /// Segment files pruned after a checkpoint covered them.
    pub pruned_segments: AtomicU64,
    /// Total wall-clock nanoseconds committers spent blocked waiting for
    /// their group's fsync acknowledgment.
    pub group_wait_nanos: AtomicU64,
}

impl DurabilityStats {
    /// Record one flushed group: `records` appended in a single write +
    /// fsync totaling `bytes` on disk.
    pub fn record_group(&self, records: u64, bytes: u64) {
        self.appends.fetch_add(records, Ordering::Relaxed);
        self.group_records.fetch_add(records, Ordering::Relaxed);
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record a completed checkpoint at log position `position`.
    pub fn record_checkpoint(&self, position: u64) {
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.checkpoint_position.store(position, Ordering::Relaxed);
    }

    /// Add committer wall-clock time spent waiting on group fsync.
    pub fn record_group_wait(&self, nanos: u64) {
        self.group_wait_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Snapshot the counters. `last_seq` is the highest sequence number
    /// enqueued so far, used to derive the checkpoint lag.
    pub fn view(&self, last_seq: u64) -> DurabilityView {
        let appends = self.appends.load(Ordering::Relaxed);
        let fsyncs = self.fsyncs.load(Ordering::Relaxed);
        let group_records = self.group_records.load(Ordering::Relaxed);
        let checkpoint_position = self.checkpoint_position.load(Ordering::Relaxed);
        DurabilityView {
            appends,
            fsyncs,
            bytes: self.bytes.load(Ordering::Relaxed),
            mean_group_size: if fsyncs == 0 {
                0.0
            } else {
                group_records as f64 / fsyncs as f64
            },
            fsyncs_per_commit: if appends == 0 {
                0.0
            } else {
                fsyncs as f64 / appends as f64
            },
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            checkpoint_position,
            checkpoint_lag: last_seq.saturating_sub(checkpoint_position),
            replayed: self.replayed.load(Ordering::Relaxed),
            truncated_bytes: self.truncated_bytes.load(Ordering::Relaxed),
            segments: self.segments.load(Ordering::Relaxed),
            pruned_segments: self.pruned_segments.load(Ordering::Relaxed),
            group_wait_nanos: self.group_wait_nanos.load(Ordering::Relaxed),
        }
    }
}

/// Immutable snapshot of the durability plane, surfaced through
/// `StatsView::durability()` and the shutdown report.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DurabilityView {
    /// Records appended to the log.
    pub appends: u64,
    /// Physical fsyncs issued.
    pub fsyncs: u64,
    /// Bytes written to log segments.
    pub bytes: u64,
    /// Mean records per fsync group (0 before the first group).
    pub mean_group_size: f64,
    /// Fsyncs divided by logged commits — below 1.0 whenever group commit
    /// batches more than one record per sync.
    pub fsyncs_per_commit: f64,
    /// Checkpoints completed.
    pub checkpoints: u64,
    /// Log position of the latest checkpoint.
    pub checkpoint_position: u64,
    /// Records enqueued past the latest checkpoint (replay distance after
    /// a crash right now).
    pub checkpoint_lag: u64,
    /// Records replayed during recovery at startup.
    pub replayed: u64,
    /// Torn-tail bytes truncated during recovery.
    pub truncated_bytes: u64,
    /// Segment files created this run.
    pub segments: u64,
    /// Segment files pruned after checkpoints.
    pub pruned_segments: u64,
    /// Committer wall-clock nanoseconds spent waiting on group fsyncs.
    pub group_wait_nanos: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_derives_group_and_lag_metrics() {
        let stats = DurabilityStats::default();
        stats.record_group(4, 100);
        stats.record_group(2, 60);
        stats.record_checkpoint(5);
        stats.record_group_wait(1_000);
        let view = stats.view(9);
        assert_eq!(view.appends, 6);
        assert_eq!(view.fsyncs, 2);
        assert_eq!(view.bytes, 160);
        assert!((view.mean_group_size - 3.0).abs() < f64::EPSILON);
        assert!((view.fsyncs_per_commit - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(view.checkpoints, 1);
        assert_eq!(view.checkpoint_position, 5);
        assert_eq!(view.checkpoint_lag, 4);
        assert_eq!(view.group_wait_nanos, 1_000);
    }

    #[test]
    fn empty_stats_avoid_division_by_zero() {
        let view = DurabilityStats::default().view(0);
        assert_eq!(view.mean_group_size, 0.0);
        assert_eq!(view.fsyncs_per_commit, 0.0);
        assert_eq!(view.checkpoint_lag, 0);
    }
}
