//! The log record framing: length-prefixed, CRC-checked, torn-tail safe.
//!
//! One record is
//!
//! ```text
//! [payload_len: u32 LE] [crc32: u32 LE] [seq: u64 LE] [payload bytes]
//! ```
//!
//! where the CRC covers the sequence number and the payload. The decoder
//! ([`decode_records`]) walks a byte buffer front to back and stops at the
//! first record that is incomplete (torn tail after a crash mid-append) or
//! whose CRC fails — everything before that point is the committed prefix,
//! everything after is discarded.

/// Bytes of framing ahead of each payload: length + CRC + sequence number.
pub const RECORD_HEADER_BYTES: usize = 4 + 4 + 8;

/// Hard cap on a single record's payload, so a corrupted length field can
/// never drive the decoder into a multi-gigabyte allocation.
pub const MAX_PAYLOAD_BYTES: usize = 64 * 1024 * 1024;

/// CRC-32 (IEEE 802.3 polynomial, reflected), computed bytewise from a
/// lazily built lookup table. Hand-rolled because the workspace builds
/// offline with zero crates.io dependencies.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// Streaming form of [`crc32`]: feed successive chunks into the running
/// state (start from `0xFFFF_FFFF`, finish by XORing with `0xFFFF_FFFF`).
fn crc32_update(mut state: u32, bytes: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut table = [0u32; 256];
        let mut index = 0;
        while index < 256 {
            let mut crc = index as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[index] = crc;
            index += 1;
        }
        table
    }
    const TABLE: [u32; 256] = table();
    for &byte in bytes {
        state = TABLE[usize::from((state as u8) ^ byte)] ^ (state >> 8);
    }
    state
}

/// CRC over the record body (sequence number + payload) — what the header's
/// CRC field stores.
fn record_crc(seq: u64, payload: &[u8]) -> u32 {
    let state = crc32_update(0xFFFF_FFFF, &seq.to_le_bytes());
    crc32_update(state, payload) ^ 0xFFFF_FFFF
}

/// Append one framed record to `out`.
pub fn encode_record(seq: u64, payload: &[u8], out: &mut Vec<u8>) {
    out.reserve(RECORD_HEADER_BYTES + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&record_crc(seq, payload).to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(payload);
}

/// What [`decode_records`] recovered from a buffer.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct DecodedLog {
    /// The valid records, in log order.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Length of the valid prefix in bytes — the truncation point for a
    /// torn tail.
    pub valid_bytes: usize,
    /// True when decoding stopped before the end of the buffer (torn or
    /// corrupt tail).
    pub torn: bool,
}

/// Decode every valid record from the front of `bytes`, stopping at the
/// first incomplete or corrupt one. Never panics and never reads past the
/// buffer, whatever the (possibly hostile) contents.
pub fn decode_records(bytes: &[u8]) -> DecodedLog {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while bytes.len() - offset >= RECORD_HEADER_BYTES {
        let head = &bytes[offset..];
        let len = u32::from_le_bytes(head[0..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_PAYLOAD_BYTES || bytes.len() - offset - RECORD_HEADER_BYTES < len {
            break; // Torn tail (or corrupted length): stop here.
        }
        let crc = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
        let seq = u64::from_le_bytes(head[8..16].try_into().expect("8 bytes"));
        let payload = &head[RECORD_HEADER_BYTES..RECORD_HEADER_BYTES + len];
        if record_crc(seq, payload) != crc {
            break; // Corrupt record: everything from here on is suspect.
        }
        records.push((seq, payload.to_vec()));
        offset += RECORD_HEADER_BYTES + len;
    }
    DecodedLog {
        records,
        valid_bytes: offset,
        torn: offset != bytes.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip_preserves_records() {
        let mut buffer = Vec::new();
        encode_record(1, b"alpha", &mut buffer);
        encode_record(2, b"", &mut buffer);
        encode_record(3, &[0xFF; 100], &mut buffer);
        let decoded = decode_records(&buffer);
        assert!(!decoded.torn);
        assert_eq!(decoded.valid_bytes, buffer.len());
        assert_eq!(decoded.records.len(), 3);
        assert_eq!(decoded.records[0], (1, b"alpha".to_vec()));
        assert_eq!(decoded.records[1], (2, Vec::new()));
        assert_eq!(decoded.records[2], (3, vec![0xFF; 100]));
    }

    #[test]
    fn truncation_at_every_offset_yields_a_valid_prefix() {
        // The torn-tail property: for ANY truncation point, the decoder
        // returns exactly the records that fit wholly before it — never a
        // partial record, never a panic.
        let mut buffer = Vec::new();
        let payloads: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; usize::from(i) * 3]).collect();
        let mut ends = Vec::new();
        for (index, payload) in payloads.iter().enumerate() {
            encode_record(index as u64 + 1, payload, &mut buffer);
            ends.push(buffer.len());
        }
        for cut in 0..=buffer.len() {
            let decoded = decode_records(&buffer[..cut]);
            let expected = ends.iter().filter(|&&end| end <= cut).count();
            assert_eq!(
                decoded.records.len(),
                expected,
                "cut at byte {cut} must keep exactly the whole records before it"
            );
            assert_eq!(
                decoded.valid_bytes,
                ends[..expected].last().copied().unwrap_or(0)
            );
            assert_eq!(decoded.torn, cut != decoded.valid_bytes);
            for (offset, (seq, payload)) in decoded.records.iter().enumerate() {
                assert_eq!(*seq, offset as u64 + 1);
                assert_eq!(payload, &payloads[offset]);
            }
        }
    }

    #[test]
    fn corrupting_any_single_byte_is_detected() {
        let mut pristine = Vec::new();
        encode_record(7, b"payload-bytes", &mut pristine);
        encode_record(8, b"second", &mut pristine);
        let first_len = RECORD_HEADER_BYTES + b"payload-bytes".len();
        for index in 0..first_len {
            let mut corrupted = pristine.clone();
            corrupted[index] ^= 0x40;
            let decoded = decode_records(&corrupted);
            // A flipped byte in the first record must not let that record
            // through (a corrupted length field may also swallow the
            // second record — that is the conservative, safe outcome).
            assert!(
                decoded.records.first().map(|(seq, _)| *seq) != Some(7)
                    || decoded.records.first().map(|(_, p)| p.clone())
                        == Some(b"payload-bytes".to_vec()),
                "byte {index}: a corrupt record must never decode"
            );
            assert!(
                decoded.records.len() < 2 || decoded.records[0].0 != 7 || corrupted == pristine
            );
        }
    }

    #[test]
    fn hostile_length_field_does_not_allocate() {
        let mut buffer = Vec::new();
        buffer.extend_from_slice(&u32::MAX.to_le_bytes());
        buffer.extend_from_slice(&[0u8; 12]);
        let decoded = decode_records(&buffer);
        assert!(decoded.records.is_empty());
        assert_eq!(decoded.valid_bytes, 0);
        assert!(decoded.torn);
    }
}
