//! # katme-durability — the durability plane
//!
//! An opt-in write-ahead log for the KATME executor: committed transaction
//! write-sets are serialized into a per-run segmented log by a dedicated
//! log-writer thread that batches concurrent commits into one append +
//! fsync (**group commit**), a checkpointer periodically snapshots
//! structure state at a recorded log position so recovery replays only the
//! suffix, and [`Wal::open`] performs **recovery** — returning the valid
//! checkpoint and committed log suffix for the caller to re-apply before
//! accepting new work.
//!
//! > **Start with the [`katme`](../katme/index.html) facade crate**:
//! > `Katme::builder().durability(path)` wires this log into the STM commit
//! > path and runs recovery before the runtime accepts work. Depend on
//! > `katme-durability` directly only for standalone log use.
//!
//! ## Protocol
//!
//! The log is a sequence of CRC-framed records (see [`record`]) across
//! numbered segment files (see [`segment`]). Committers call
//! [`Wal::enqueue`] *while still holding their STM write locks* (so log
//! order respects transaction dependency order) and [`Wal::wait_durable`]
//! *after releasing them* (so no lock is ever held across an fsync). The
//! log-writer thread drains every pending record into one buffered append
//! and one `fdatasync`, then wakes all committers whose sequence number the
//! sync covered — under concurrent commit traffic each fsync amortizes over
//! the whole group, driving fsyncs-per-commit well below one.
//!
//! Checkpoints are *fuzzy* (see [`checkpoint`]): the checkpointer records
//! the last enqueued sequence number `P`, then snapshots structure state
//! with ordinary transactions. The snapshot is guaranteed to contain the
//! effect of every record with `seq <= P` (publication precedes enqueue,
//! which precedes lock release) and may contain effects of later records;
//! replaying the suffix `seq > P` over the restored snapshot is idempotent
//! per key (per-key log order equals per-key version order), so recovery
//! converges to the exact committed prefix.
//!
//! ## Invariants
//!
//! 1. **No lost acknowledged commit**: `wait_durable` returns only after
//!    the record's bytes are fsynced, so any commit acknowledged to a
//!    caller survives a crash.
//! 2. **No torn record applied**: the decoder stops at the first record
//!    whose length or CRC does not check out; a torn tail is truncated on
//!    the next open, never replayed.
//! 3. **Prefix consistency**: recovery restores exactly the effects of a
//!    contiguous log prefix — the fsynced records — never a subset with
//!    holes (records are appended and synced strictly in sequence order).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod checkpoint;
pub mod record;
pub mod segment;
pub mod stats;
pub mod wal;

pub use checkpoint::{read_checkpoint, Checkpoint};
pub use record::{crc32, decode_records, encode_record, DecodedLog};
pub use stats::{DurabilityStats, DurabilityView};
pub use wal::{CrashPoint, RecoveredLog, Wal, WalConfig};
