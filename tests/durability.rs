//! Crash-point matrix for the durability plane: a child process runs a
//! durable runtime with a fault-injection point armed
//! ([`WalConfig::with_crash_point`]), acknowledges each durably committed
//! operation on stderr, and dies by `abort()` at the armed point. The
//! parent then recovers from the surviving on-disk state and asserts the
//! core invariant: **every acknowledged operation is present after
//! recovery** (unacknowledged operations may or may not be — both are
//! consistent committed prefixes).
//!
//! The matrix covers the three distinct on-disk shapes a crash can leave:
//!
//! * [`CrashPoint::MidAppend`] — a torn record at the tail (recovery must
//!   physically truncate it),
//! * [`CrashPoint::PreFsync`] — a fully written but never-synced group
//!   (nothing was acknowledged, so recovery may keep or lose it),
//! * [`CrashPoint::MidCheckpoint`] — a partial checkpoint file (recovery
//!   must fall back to full-log replay, never the torn snapshot).
//!
//! The child is this same test binary re-invoked with `--exact
//! crash_child`; acknowledgements go to stderr because a piped stdout is
//! block-buffered and would lose the tail at `abort()`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;
use std::time::Duration;

use katme::{
    spec_payload, CrashPoint, DictState, Durable, Katme, OpKind, RecoveryReport, Runtime, Stm,
    StmConfig, StructureKind, TxnSpec, WalConfig, WithKey,
};
use katme_collections::TxDictionary;

const CHILD_POINT_ENV: &str = "KATME_DURABILITY_CRASH_POINT";
const CHILD_DIR_ENV: &str = "KATME_DURABILITY_CRASH_DIR";

/// Dictionary key the MV crash child re-inserts twice per block with
/// increasing values — the probe for redo-record ordering (disjoint from
/// the unique-key space, which starts at 1000).
const MV_WITNESS_KEY: u32 = 1;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("katme-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A durable runtime over the hash-table dictionary it checkpoints.
type DurableRuntime = (
    Arc<dyn TxDictionary>,
    Runtime<Durable<WithKey<TxnSpec>>, ()>,
);

/// Build a durable runtime over `dir`: hash-table dictionary, two workers,
/// every insert carrying its redo record. With `mv`, the whole key space is
/// pinned to the multi-version lane, so batch submissions run as MV blocks
/// whose redo records reach the WAL in block (= commit) order.
fn durable_runtime(config: WalConfig, checkpoint_interval: Duration, mv: bool) -> DurableRuntime {
    let stm = Stm::new(StmConfig::default());
    let dict = StructureKind::HashTable.build(stm.clone());
    let dict_for_workers = Arc::clone(&dict);
    let mut builder = Katme::builder()
        .workers(2)
        .key_range(0, 65_535)
        .stm(stm)
        .durability_config(config)
        .durable_state(Arc::new(DictState::new(Arc::clone(&dict))))
        .checkpoint_interval(checkpoint_interval);
    if mv {
        builder = builder.mv_range(0, 65_535);
    }
    let runtime = builder
        .build(move |_worker, task: Durable<WithKey<TxnSpec>>| {
            katme::apply_spec(&*dict_for_workers, &task.task.task);
        })
        .expect("valid durable configuration");
    (dict, runtime)
}

fn insert_task(key: u32, value: u64) -> Durable<WithKey<TxnSpec>> {
    let spec = TxnSpec {
        key,
        value,
        op: OpKind::Insert,
    };
    let payload = spec_payload(&spec);
    Durable::new(WithKey::new(u64::from(key), spec), payload)
}

/// The child body: submit inserts one at a time, acknowledging each on
/// stderr only after its handle resolves (which happens after the commit's
/// group is fsynced). The armed crash point aborts the process mid-run.
///
/// This `#[test]` is a no-op in normal suite runs — it only acts when the
/// parent re-invokes the binary with the crash environment set.
#[test]
fn crash_child() {
    let Ok(point) = std::env::var(CHILD_POINT_ENV) else {
        return;
    };
    let dir = std::env::var(CHILD_DIR_ENV).expect("crash child needs a WAL directory");
    // crash_after counts normally flushed groups (append/fsync points) or
    // completed checkpoints; with serial submission each group holds one
    // record (one whole MV block in the batched variant), so "3" means
    // three groups are acknowledged and the fourth dies.
    let (point, after, interval, mv) = match point.as_str() {
        "mid-append" => (CrashPoint::MidAppend, 3, Duration::from_secs(3600), false),
        "pre-fsync" => (CrashPoint::PreFsync, 3, Duration::from_secs(3600), false),
        // Batched MV blocks through the pinned lane. A block enqueues four
        // records back-to-back, which the writer usually — but not
        // guaranteedly — flushes as one group, so "4" only promises that
        // at least the first block is fully durable and acknowledged
        // before the crash.
        "mv-pre-fsync" => (CrashPoint::PreFsync, 4, Duration::from_secs(3600), true),
        // The checkpointer runs on a real interval here: ops acknowledged
        // before the first (crashing) checkpoint round must survive it.
        "mid-checkpoint" => (
            CrashPoint::MidCheckpoint,
            0,
            Duration::from_millis(150),
            false,
        ),
        other => panic!("unknown crash point tag {other:?}"),
    };
    let config = WalConfig::new(&dir).with_crash_point(point, after);
    let (_dict, runtime) = durable_runtime(config, interval, mv);
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    if mv {
        // Batch variant: each batch becomes one MV block of
        // [unique, witness, unique, witness] inserts. The witness key is
        // deliberately written twice per block with increasing values, so
        // the value that survives recovery proves the redo records hit the
        // log in block order (see the parent test).
        for batch in 0..60_000u32 {
            if std::time::Instant::now() >= deadline {
                break;
            }
            let base = 1_000 + batch * 2;
            let tasks = vec![
                insert_task(base, u64::from(base) * 10 + 7),
                insert_task(MV_WITNESS_KEY, u64::from(4 * batch + 1)),
                insert_task(base + 1, u64::from(base + 1) * 10 + 7),
                insert_task(MV_WITNESS_KEY, u64::from(4 * batch + 3)),
            ];
            let Ok(handles) = runtime.submit_batch(tasks) else {
                break;
            };
            if handles.into_iter().any(|handle| handle.wait().is_err()) {
                // A worker died with the WAL writer; the abort is imminent.
                break;
            }
            eprintln!("ACK {base} {}", u64::from(base) * 10 + 7);
            eprintln!("ACK {} {}", base + 1, u64::from(base + 1) * 10 + 7);
            eprintln!("ACK {MV_WITNESS_KEY} {}", 4 * batch + 3);
        }
    } else {
        // Unique keys per op (never reused): an in-flight record can become
        // durable in the instant before the abort without being
        // acknowledged, and key reuse would let such a record shadow an
        // acknowledged value.
        for i in 0..60_000u32 {
            if std::time::Instant::now() >= deadline {
                break;
            }
            let key = i + 1;
            let value = u64::from(key) * 10 + 7;
            let handle = runtime.submit(insert_task(key, value)).expect("submit");
            if handle.wait().is_err() {
                // A worker died with the WAL writer; the abort is imminent.
                break;
            }
            eprintln!("ACK {key} {value}");
        }
    }
    // Reaching this point without aborting means the crash point never
    // fired; the parent fails the run on a clean exit status.
}

/// Re-invoke this test binary as a crash child and collect the set of
/// operations it acknowledged before dying.
fn run_crash_child(tag: &str, dir: &Path) -> BTreeMap<u32, u64> {
    let exe = std::env::current_exe().expect("test binary path");
    let output = Command::new(exe)
        .args(["crash_child", "--exact", "--nocapture", "--test-threads=1"])
        .env(CHILD_POINT_ENV, tag)
        .env(CHILD_DIR_ENV, dir)
        .output()
        .expect("spawn crash child");
    assert!(
        !output.status.success(),
        "crash child must die at its armed point, but exited cleanly:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let mut acked = BTreeMap::new();
    for line in String::from_utf8_lossy(&output.stderr).lines() {
        if let Some(rest) = line.strip_prefix("ACK ") {
            let mut parts = rest.split_whitespace();
            let key: u32 = parts.next().unwrap().parse().unwrap();
            let value: u64 = parts.next().unwrap().parse().unwrap();
            acked.insert(key, value);
        }
    }
    acked
}

/// Recover from the crashed log and assert every acknowledged operation
/// survived; returns the recovery report for point-specific assertions.
fn recover_and_verify(dir: &Path, acked: &BTreeMap<u32, u64>) -> RecoveryReport {
    let (dict, runtime) = durable_runtime(WalConfig::new(dir), Duration::from_secs(3600), false);
    let recovery = runtime.recovery().expect("durable runtime has a report");
    for (&key, &value) in acked {
        assert_eq!(
            dict.lookup(key),
            Some(value),
            "acknowledged insert of key {key} lost across the crash"
        );
    }
    runtime.shutdown();
    recovery
}

#[test]
fn mid_append_crash_truncates_the_torn_tail_and_keeps_acked_commits() {
    let dir = temp_dir("mid-append");
    let acked = run_crash_child("mid-append", &dir);
    assert_eq!(
        acked.len(),
        3,
        "three groups flush normally before the torn fourth append"
    );
    let recovery = recover_and_verify(&dir, &acked);
    assert!(
        recovery.truncated_bytes > 0,
        "the half-written record must be physically truncated: {recovery:?}"
    );
    assert!(recovery.replayed >= acked.len() as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pre_fsync_crash_loses_nothing_acknowledged() {
    let dir = temp_dir("pre-fsync");
    let acked = run_crash_child("pre-fsync", &dir);
    assert_eq!(acked.len(), 3, "the unsynced fourth group was never acked");
    let recovery = recover_and_verify(&dir, &acked);
    // The full-but-unsynced record survived the process (it was a plain
    // write), so recovery replays at least the acknowledged prefix — the
    // extra record is an unacknowledged commit, which recovery may keep.
    assert!(recovery.replayed >= acked.len() as u64);
    assert!(!recovery.restored_checkpoint);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The MV lane's durability contract across a crash: every operation of an
/// acknowledged MV *block* survives recovery, and the redo records replay
/// in block (= commit) order. The child pins the whole key space to the
/// lane and submits batches of four inserts, two of which re-insert
/// [`MV_WITNESS_KEY`] with increasing values. The recovered witness value
/// is whatever record replayed *last* for that key — so `witness >= last
/// acknowledged witness` holds iff the log preserved commit order: a
/// scrambled log (within a block or across blocks) would let one of the
/// earlier, strictly smaller witness records replay last.
#[test]
fn mv_batch_pre_fsync_crash_keeps_acked_blocks_in_commit_order() {
    let dir = temp_dir("mv-pre-fsync");
    let acked = run_crash_child("mv-pre-fsync", &dir);
    let witness_acked = *acked
        .get(&MV_WITNESS_KEY)
        .expect("at least one MV block acknowledged");
    let unique: BTreeMap<u32, u64> = acked
        .iter()
        .filter(|&(&key, _)| key != MV_WITNESS_KEY)
        .map(|(&key, &value)| (key, value))
        .collect();
    assert!(
        !unique.is_empty() && unique.len() % 2 == 0,
        "blocks acknowledge all-or-nothing, two unique keys per block: {unique:?}"
    );

    let (dict, runtime) = durable_runtime(WalConfig::new(&dir), Duration::from_secs(3600), true);
    let recovery = runtime.recovery().expect("durable runtime has a report");
    for (&key, &value) in &unique {
        assert_eq!(
            dict.lookup(key),
            Some(value),
            "acknowledged MV-block insert of key {key} lost across the crash"
        );
    }
    let witness = dict
        .lookup(MV_WITNESS_KEY)
        .expect("witness key must survive — it was in every acknowledged block");
    assert!(
        witness >= witness_acked,
        "a redo record replayed out of commit order: recovered witness \
         {witness} < acknowledged {witness_acked}"
    );
    assert_eq!(
        witness % 2,
        1,
        "the recovered witness must be one of the written values \
         (4b+1 or 4b+3): {witness}"
    );
    assert!(
        !recovery.restored_checkpoint,
        "no checkpoint ever completed in this run: {recovery:?}"
    );
    assert!(
        recovery.replayed >= acked.len() as u64,
        "every acknowledged record is replayed: {recovery:?}"
    );
    runtime.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_checkpoint_crash_falls_back_to_full_replay() {
    let dir = temp_dir("mid-checkpoint");
    let acked = run_crash_child("mid-checkpoint", &dir);
    assert!(
        !acked.is_empty(),
        "some inserts must be acknowledged before the first checkpoint round"
    );
    let recovery = recover_and_verify(&dir, &acked);
    assert!(
        !recovery.restored_checkpoint,
        "the torn first checkpoint must never be restored: {recovery:?}"
    );
    assert!(
        recovery.replayed >= acked.len() as u64,
        "without a checkpoint, every logged record is replayed: {recovery:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
