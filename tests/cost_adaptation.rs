//! Acceptance tests for the predictive cost plane, end to end through the
//! facade: a sustained phase shift must be answered by a cost-model swap
//! whose logged predicted gain exceeds its logged swap cost, a stationary
//! run must never spend a swap, and the calibration/trust state must be
//! observable through `StatsView::cost_model`.

use std::time::Duration;

use katme::{AdaptationCause, Katme, KeyPartition, WithKey};
use katme_workload::{DistributionKind, KeyDistribution};

/// Workers used by every run in this file.
const WORKERS: usize = 4;
/// Raw 17-bit key space (matches the paper's generator).
const KEY_MAX: u64 = 131_071;
/// Samples before the initial adaptation and per continuous epoch.
const EPOCH: u64 = 2_000;

fn cost_runtime() -> katme::Runtime<WithKey<()>, ()> {
    Katme::builder()
        .workers(WORKERS)
        .key_range(0, KEY_MAX)
        .sample_threshold(EPOCH as usize)
        .adaptation_interval(EPOCH)
        .cost_model(true)
        .build(|_worker, _task: WithKey<()>| {})
        .expect("valid cost-model configuration")
}

fn submit_keys(
    runtime: &katme::Runtime<WithKey<()>, ()>,
    dist: &mut KeyDistribution,
    count: usize,
    mirror: bool,
) {
    for _ in 0..count {
        let key = u64::from(dist.sample_raw());
        let key = if mirror { KEY_MAX - key } else { key };
        runtime.submit_detached(WithKey::new(key, ())).unwrap();
    }
}

/// Lengthen the running epoch's wall clock so the measured service rate
/// stays modest and the swap price (seconds × rate) converts to a small
/// task count even when a CI hiccup inflates one publish measurement.
fn stretch_epoch() {
    std::thread::sleep(Duration::from_millis(25));
}

fn routed_imbalance(partition: &KeyPartition, dist: &mut KeyDistribution, mirror: bool) -> f64 {
    let mut counts = [0u64; WORKERS];
    for _ in 0..20_000 {
        let key = u64::from(dist.sample_raw());
        let key = if mirror { KEY_MAX - key } else { key };
        counts[partition.worker_for(key)] += 1;
    }
    let max = *counts.iter().max().unwrap() as f64;
    let mean = counts.iter().sum::<u64>() as f64 / WORKERS as f64;
    max / mean
}

/// A sustained phase shift must produce a cost-model swap — justified by
/// its own log entry — and leave the partition balanced for the new phase,
/// with no further swaps once the phase holds.
#[test]
fn phase_shift_spends_one_justified_swap() {
    let runtime = cost_runtime();
    let mut dist = KeyDistribution::new(DistributionKind::exponential_paper(), 47);

    // Initial adaptation (which warms the swap-cost calibration) plus one
    // stationary epoch.
    submit_keys(&runtime, &mut dist, 2 * EPOCH as usize, false);
    let stats = runtime.stats();
    assert_eq!(stats.repartitions, 1, "initial adaptation only: {stats:?}");
    let view = stats.cost_model().expect("cost plane attached");
    assert!(view.calibrated, "initial publish warms the calibration");
    assert!(view.calibration.publish_seconds.is_some());

    // The mirrored high end, sustained. The first shifted epoch reads as
    // non-persistent (it contradicts its predecessor); the second confirms
    // the shape and the swap lands.
    for _ in 0..2 {
        stretch_epoch();
        submit_keys(&runtime, &mut dist, EPOCH as usize, true);
    }
    let stats = runtime.stats();
    assert!(
        stats.repartitions >= 2,
        "the shift must be answered: {:?}",
        stats.adaptations
    );
    let last = stats.adaptations.last().expect("log has entries");
    match last.cause {
        AdaptationCause::CostModel {
            predicted_gain,
            swap_cost,
        } => {
            assert!(
                predicted_gain > swap_cost,
                "every adopted swap is justified by construction: {last:?}"
            );
        }
        ref other => panic!("the swap must be attributed to the cost model: {other:?}"),
    }

    // The new phase, sustained: no more swaps, and the published partition
    // balances the mirrored traffic.
    let settled = stats.repartitions;
    submit_keys(&runtime, &mut dist, 2 * EPOCH as usize, true);
    let stats = runtime.stats();
    assert_eq!(
        stats.repartitions, settled,
        "a settled phase must not churn: {:?}",
        stats.adaptations
    );
    let partition = runtime
        .scheduler()
        .partition()
        .expect("adaptive scheduler exposes its partition");
    let imbalance = routed_imbalance(&partition, &mut dist, true);
    assert!(
        imbalance < 1.5,
        "the adopted plan must re-balance the shifted keys: {imbalance:.2}x"
    );
    let report = runtime.shutdown();
    assert_eq!(report.repartitions, report.adaptations.len() as u64);
}

/// A stationary run of the same volume must never spend a swap: the
/// deadband prices sampling noise at zero gain, so no plan ever beats its
/// swap cost.
#[test]
fn stationary_run_never_spends_a_swap() {
    let runtime = cost_runtime();
    let mut dist = KeyDistribution::new(DistributionKind::exponential_paper(), 47);
    submit_keys(&runtime, &mut dist, 6 * EPOCH as usize, false);
    let stats = runtime.stats();
    assert_eq!(
        stats.repartitions, 1,
        "zero swaps on stationary load: {:?}",
        stats.adaptations
    );
    let view = stats.cost_model().expect("cost plane attached");
    assert!(
        view.decisions >= 2,
        "epochs were decided, not skipped: {view:?}"
    );
    assert_eq!(view.adoptions, 0, "{view:?}");
    runtime.shutdown();
}

/// Without `cost_model(true)` the stats surface reports no cost plane, and
/// with it the view carries the calibration estimates.
#[test]
fn cost_model_state_is_surfaced_only_when_enabled() {
    let threshold = Katme::builder()
        .adaptation_interval(EPOCH)
        .build(|_worker, _task: WithKey<()>| {})
        .unwrap();
    assert!(threshold.stats().cost_model().is_none());
    threshold.shutdown();

    let runtime = cost_runtime();
    let view = runtime.stats().cost_model.clone().expect("view present");
    assert!(!view.calibrated, "no publish has been measured yet");
    assert_eq!(view.calibration.publish_samples, 0);
    assert_eq!(view.trust, 1.0);
    assert_eq!(view.margin, 1.0);
    runtime.shutdown();
}

/// Idle workers park on the condvar between bursts (zero CPU) and wake on
/// the next submission; the parks are counted through the stats surface.
#[test]
fn idle_workers_park_between_bursts_and_wake_on_submit() {
    let runtime = Katme::builder()
        .workers(2)
        .key_range(0, KEY_MAX)
        .build(|_worker, _task: WithKey<()>| {})
        .unwrap();
    for key in 0..100u64 {
        runtime.submit_detached(WithKey::new(key, ())).unwrap();
    }
    // Let the pool drain and go idle long enough to escalate into parking.
    let started = std::time::Instant::now();
    while runtime.stats().parks == 0 && started.elapsed() < Duration::from_secs(2) {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(runtime.stats().parks > 0, "idle workers must park");
    // Parked workers still serve the next burst promptly.
    let handle = runtime.submit(WithKey::new(7, ())).unwrap();
    handle.wait().expect("woken worker executes the task");
    let report = runtime.shutdown();
    assert!(report.parks > 0, "{report:?}");
}
