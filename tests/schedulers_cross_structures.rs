//! Integration tests sweeping every scheduler across every benchmark
//! structure (hash table, red-black tree, sorted list), checking correctness
//! of the combined runtime + STM + data-structure stack through the facade.

use std::sync::Arc;

use katme::{Katme, SchedulerKind, Stm};
use katme_collections::StructureKind;
use katme_workload::{DistributionKind, OpKind, Trace, TxnSpec};

/// Route a per-key-ordered trace through the runtime for every
/// structure × key-based-scheduler combination and check the final contents
/// against a sequential replay.
#[test]
fn key_based_schedulers_preserve_semantics_on_every_structure() {
    let trace = Trace::record_paper(DistributionKind::gaussian_paper(), 8_000, 77);

    for structure in StructureKind::ALL {
        // Sequential reference on the same structure type.
        let reference = structure.build(Stm::default());
        for spec in trace.ops() {
            katme_tests::apply(&*reference, spec);
        }
        let expected_len = reference.len();

        for scheduler_kind in [SchedulerKind::FixedKey, SchedulerKind::AdaptiveKey] {
            let stm = Stm::default();
            let dict = structure.build(stm.clone());
            let dict_for_workers = Arc::clone(&dict);
            let runtime = Katme::builder()
                .workers(3)
                .scheduler(scheduler_kind)
                .stm(stm)
                .build(move |_worker, spec: TxnSpec| {
                    katme_tests::apply(&*dict_for_workers, &spec);
                })
                .expect("valid configuration");
            for spec in trace.ops() {
                // TxnSpec routes itself by its dictionary key.
                runtime.submit_detached(*spec).expect("accepting");
            }
            let report = runtime.shutdown();
            assert_eq!(report.completed, trace.len() as u64);
            assert_eq!(
                dict.len(),
                expected_len,
                "{structure} under {scheduler_kind} diverged from sequential replay"
            );
            // Spot-check membership for a sample of keys.
            for spec in trace.ops().iter().step_by(97) {
                assert_eq!(
                    dict.contains(spec.key),
                    reference.contains(spec.key),
                    "{structure}/{scheduler_kind}: key {}",
                    spec.key
                );
            }
        }
    }
}

/// Work stealing may reorder per-key operations, so check it with a
/// commutative (insert-only) workload: nothing may be lost even when one
/// worker's range receives all the keys.
#[test]
fn work_stealing_preserves_all_insertions() {
    let stm = Stm::default();
    let dict = StructureKind::RbTree.build(stm.clone());
    let dict_for_workers = Arc::clone(&dict);
    let runtime = Katme::builder()
        .workers(4)
        .scheduler(SchedulerKind::FixedKey)
        .work_stealing(true)
        .stm(stm)
        .build(move |_worker, spec: TxnSpec| {
            dict_for_workers.insert(spec.key, spec.value);
        })
        .expect("valid configuration");
    // Every key is in the lowest quarter of the space, i.e. worker 0's range.
    for key in 0..4_000u32 {
        let spec = TxnSpec {
            key: key % 16_000,
            value: u64::from(key),
            op: OpKind::Insert,
        };
        runtime.submit_detached(spec).expect("accepting");
    }
    let report = runtime.shutdown();
    assert_eq!(report.completed, 4_000);
    assert!(report.stolen > 0, "stealing should have happened");
    assert_eq!(dict.len(), 4_000);
}

/// The contention manager choice must not affect correctness, only
/// performance: run the same conflict-heavy workload under every manager.
#[test]
fn every_contention_manager_yields_correct_results() {
    use katme::{CmKind, StmConfig};
    for cm in CmKind::ALL {
        let stm = Stm::new(StmConfig::default().with_contention_manager(cm));
        let dict = StructureKind::SortedList.build(stm.clone());
        std::thread::scope(|s| {
            for t in 0..3u32 {
                let dict = Arc::clone(&dict);
                s.spawn(move || {
                    for i in 0..400u32 {
                        // Narrow key range to force conflicts.
                        let key = (i * 3 + t) % 64;
                        if i % 2 == 0 {
                            dict.insert(key, u64::from(t));
                        } else {
                            dict.remove(key);
                        }
                    }
                });
            }
        });
        // The list must still be a valid dictionary (no duplicates, len
        // consistent with membership).
        let len = dict.len();
        let members = (0..64u32).filter(|&k| dict.contains(k)).count();
        assert_eq!(len, members, "inconsistent structure under {cm}");
    }
}
