//! Integration tests sweeping every scheduler across every benchmark
//! structure (hash table, red-black tree, sorted list), checking correctness
//! of the combined executor + STM + data-structure stack.

use std::sync::Arc;

use katme_collections::StructureKind;
use katme_core::prelude::*;
use katme_stm::Stm;
use katme_workload::{DistributionKind, OpKind, Trace, TxnSpec};

/// Route a per-key-ordered trace through the executor for every
/// structure × key-based-scheduler combination and check the final contents
/// against a sequential replay.
#[test]
fn key_based_schedulers_preserve_semantics_on_every_structure() {
    let trace = Trace::record_paper(DistributionKind::gaussian_paper(), 8_000, 77);

    for structure in StructureKind::ALL {
        // Sequential reference on the same structure type.
        let reference = structure.build(Stm::default());
        for spec in trace.ops() {
            katme_tests::apply(&*reference, spec);
        }
        let expected_len = reference.len();

        for scheduler_kind in [SchedulerKind::FixedKey, SchedulerKind::AdaptiveKey] {
            let stm = Stm::default();
            let dict = structure.build(stm.clone());
            let dict_for_workers = Arc::clone(&dict);
            let executor = Executor::start(
                ExecutorConfig::default().with_drain_on_shutdown(true),
                scheduler_kind.build(3, KeyBounds::dict16()),
                move |_worker, spec: TxnSpec| {
                    katme_tests::apply(&*dict_for_workers, &spec);
                },
            );
            for spec in trace.ops() {
                executor.submit(u64::from(spec.key), *spec);
            }
            let report = executor.shutdown();
            assert_eq!(report.completed(), trace.len() as u64);
            assert_eq!(
                dict.len(),
                expected_len,
                "{structure} under {scheduler_kind} diverged from sequential replay"
            );
            // Spot-check membership for a sample of keys.
            for spec in trace.ops().iter().step_by(97) {
                assert_eq!(
                    dict.contains(spec.key),
                    reference.contains(spec.key),
                    "{structure}/{scheduler_kind}: key {}",
                    spec.key
                );
            }
        }
    }
}

/// Work stealing may reorder per-key operations, so check it with a
/// commutative (insert-only) workload: nothing may be lost even when one
/// worker's range receives all the keys.
#[test]
fn work_stealing_preserves_all_insertions() {
    let stm = Stm::default();
    let dict = StructureKind::RbTree.build(stm.clone());
    let dict_for_workers = Arc::clone(&dict);
    let executor = Executor::start(
        ExecutorConfig::default()
            .with_drain_on_shutdown(true)
            .with_work_stealing(true),
        SchedulerKind::FixedKey.build(4, KeyBounds::dict16()),
        move |_worker, spec: TxnSpec| {
            dict_for_workers.insert(spec.key, spec.value);
        },
    );
    // Every key is in the lowest quarter of the space, i.e. worker 0's range.
    for key in 0..4_000u32 {
        let spec = TxnSpec {
            key: key % 16_000,
            value: u64::from(key),
            op: OpKind::Insert,
        };
        executor.submit(u64::from(spec.key), spec);
    }
    let report = executor.shutdown();
    assert_eq!(report.completed(), 4_000);
    assert!(report.stolen > 0, "stealing should have happened");
    assert_eq!(dict.len(), 4_000);
}

/// The contention manager choice must not affect correctness, only
/// performance: run the same conflict-heavy workload under every manager.
#[test]
fn every_contention_manager_yields_correct_results() {
    use katme_stm::{CmKind, StmConfig};
    for cm in CmKind::ALL {
        let stm = Stm::new(StmConfig::default().with_contention_manager(cm));
        let dict = StructureKind::SortedList.build(stm.clone());
        std::thread::scope(|s| {
            for t in 0..3u32 {
                let dict = Arc::clone(&dict);
                s.spawn(move || {
                    for i in 0..400u32 {
                        // Narrow key range to force conflicts.
                        let key = (i * 3 + t) % 64;
                        if i % 2 == 0 {
                            dict.insert(key, u64::from(t));
                        } else {
                            dict.remove(key);
                        }
                    }
                });
            }
        });
        // The list must still be a valid dictionary (no duplicates, len
        // consistent with membership).
        let len = dict.len();
        let members = (0..64u32).filter(|&k| dict.contains(k)).count();
        assert_eq!(len, members, "inconsistent structure under {cm}");
    }
}
