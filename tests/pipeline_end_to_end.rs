//! End-to-end integration test of the full pipeline the paper describes:
//! producers → (key mapping) → runtime/scheduler → per-worker queues →
//! worker threads → STM transactions against a shared dictionary — all wired
//! through the `Katme::builder()` facade.

use std::sync::Arc;

use katme::{
    AdaptiveKeyScheduler, BucketKeyMapper, Katme, KeyBounds, KeyMapper, Scheduler, SchedulerKind,
    Stm, WithKey,
};
use katme_collections::{Dictionary, HashTable, LockedDictionary, PAPER_BUCKETS};
use katme_workload::{DistributionKind, OpGenerator, OpKind, Trace, TxnSpec};

/// Replay a recorded trace through the runtime and independently through a
/// trivially correct coarse-lock dictionary; the final contents must match
/// exactly, proving no transaction was lost, duplicated, or misapplied.
///
/// The scheduler under test must route a given key to a stable worker for the
/// whole run (fixed partition, or an adaptive partition seeded up front), so
/// that per-key FIFO order is preserved and the sequential reference applies.
fn replay_matches_reference(scheduler: Arc<dyn Scheduler>, distribution: DistributionKind) {
    let trace = Trace::record_paper(distribution, 30_000, 0xabcd);

    // Reference: apply sequentially to a locked BTreeMap.
    let reference = LockedDictionary::new();
    for spec in trace.ops() {
        match spec.op {
            OpKind::Insert => {
                reference.insert(spec.key, spec.value);
            }
            OpKind::Delete => {
                reference.remove(spec.key);
            }
            OpKind::Lookup => {
                reference.lookup(spec.key);
            }
        }
    }

    // System under test: the same operations through the facade runtime.
    //
    // Note: FIFO per-worker queues plus stable key-based routing guarantee
    // that two operations on the same key execute in submission order (they
    // always map to the same worker), so the final state must equal the
    // sequential reference. Round-robin does NOT guarantee per-key ordering,
    // which is why it is exercised by the commutative test below instead.
    let stm = Stm::default();
    let table = Arc::new(HashTable::new(stm.clone()));
    let mapper = BucketKeyMapper::paper();
    let table_for_workers = Arc::clone(&table);
    let runtime = Katme::builder()
        .scheduler_instance(scheduler)
        .stm(stm)
        .build(move |_worker, task: WithKey<TxnSpec>| {
            katme_tests::apply(&*table_for_workers, &task.task);
        })
        .expect("valid configuration");
    for spec in trace.ops() {
        runtime
            .submit_detached(WithKey::new(mapper.key(spec), *spec))
            .expect("runtime is accepting work");
    }
    let report = runtime.shutdown();
    assert_eq!(report.completed, trace.len() as u64);
    assert_eq!(report.abandoned, 0);

    // Compare contents.
    let expected = reference.snapshot();
    assert_eq!(table.len(), expected.len());
    for (key, value) in expected {
        assert_eq!(table.lookup(key), Some(value), "key {key} mismatch");
    }
}

fn bucket_bounds() -> KeyBounds {
    KeyBounds::new(0, PAPER_BUCKETS as u64 - 1)
}

/// An adaptive scheduler whose PD-partition is computed up front from the
/// trace's own keys (the harness does the same when replaying traces), so its
/// routing is stable for the whole run.
fn seeded_adaptive(distribution: DistributionKind) -> Arc<AdaptiveKeyScheduler> {
    let trace = Trace::record_paper(distribution, 30_000, 0xabcd);
    let mapper = BucketKeyMapper::paper();
    let scheduler = AdaptiveKeyScheduler::new(4, bucket_bounds());
    let keys: Vec<u64> = trace.ops().iter().map(|spec| mapper.key(spec)).collect();
    scheduler.seed_with_keys(&keys);
    assert!(scheduler.is_adapted());
    Arc::new(scheduler)
}

#[test]
fn fixed_scheduler_replay_matches_sequential_reference() {
    replay_matches_reference(
        Arc::new(katme::FixedKeyScheduler::new(4, bucket_bounds())),
        DistributionKind::Uniform,
    );
}

#[test]
fn adaptive_scheduler_replay_matches_sequential_reference() {
    let distribution = DistributionKind::exponential_paper();
    replay_matches_reference(seeded_adaptive(distribution), distribution);
}

#[test]
fn adaptive_scheduler_replay_matches_reference_on_gaussian_keys() {
    let distribution = DistributionKind::gaussian_paper();
    replay_matches_reference(seeded_adaptive(distribution), distribution);
}

/// With a commutative workload (pure inserts of distinct keys) every
/// scheduler — including round-robin, which does not preserve per-key order —
/// must produce the same final contents.
#[test]
fn all_schedulers_agree_on_commutative_workload() {
    for scheduler_kind in SchedulerKind::ALL {
        let stm = Stm::default();
        let table = Arc::new(HashTable::with_buckets(stm.clone(), 1_009));
        let table_for_workers = Arc::clone(&table);
        let runtime = Katme::builder()
            .workers(3)
            .scheduler(scheduler_kind)
            .stm(stm)
            .build(move |_worker, spec: TxnSpec| {
                table_for_workers.insert(spec.key, spec.value);
            })
            .expect("valid configuration");
        for key in 0..5_000u32 {
            // TxnSpec is a KeyedTask (its dictionary key routes it), so no
            // WithKey wrapper is needed here.
            let spec = TxnSpec {
                key,
                value: u64::from(key) * 2,
                op: OpKind::Insert,
            };
            runtime.submit_detached(spec).expect("accepting");
        }
        let report = runtime.shutdown();
        assert_eq!(report.completed, 5_000, "{scheduler_kind}");
        assert_eq!(table.len(), 5_000, "{scheduler_kind}");
        assert_eq!(table.lookup(4_999), Some(9_998), "{scheduler_kind}");
    }
}

/// Multiple concurrent producers feeding the runtime — the configuration the
/// paper actually runs (4–8 producers) — must not lose operations.
#[test]
fn concurrent_producers_full_pipeline() {
    let stm = Stm::default();
    let table = Arc::new(HashTable::new(stm.clone()));
    let table_for_workers = Arc::clone(&table);
    let runtime = Katme::builder()
        .workers(4)
        .producers(4)
        .key_bounds(bucket_bounds())
        .stm(stm.clone())
        .build(move |_worker, task: WithKey<TxnSpec>| {
            katme_tests::apply(&*table_for_workers, &task.task);
        })
        .expect("valid configuration");

    let producers = 4;
    let per_producer = 10_000;
    std::thread::scope(|s| {
        for p in 0..producers {
            let runtime = &runtime;
            s.spawn(move || {
                let mapper = BucketKeyMapper::paper();
                let mut gen = OpGenerator::paper(DistributionKind::gaussian_paper(), p as u64);
                for _ in 0..per_producer {
                    let spec = gen.next_spec();
                    runtime
                        .submit_detached(WithKey::new(mapper.key(&spec), spec))
                        .expect("accepting");
                }
            });
        }
    });

    let report = runtime.shutdown();
    assert_eq!(report.completed, (producers * per_producer) as u64);
    // The STM saw exactly one committed transaction per completed operation.
    assert!(stm.snapshot().commits >= report.completed);
}
