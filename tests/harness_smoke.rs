//! Smoke tests for the experiment harness: every figure/table generator runs
//! end to end in quick mode and produces structurally sane output.

use katme_collections::StructureKind;
use katme_harness::{
    balance_table, contention_table, fig3_hashtable, fig4_overhead, tree_list, HarnessOptions,
};
use katme_workload::DistributionKind;

fn quick() -> HarnessOptions {
    HarnessOptions {
        quick: true,
        ..Default::default()
    }
}

#[test]
fn figure3_smoke() {
    let panels = fig3_hashtable(&quick());
    assert_eq!(panels.len(), 3);
    for (_, rows) in panels {
        assert!(!rows.is_empty());
        for row in rows {
            assert!(row.throughput > 0.0);
            assert!(row.imbalance >= 1.0);
            assert!(row.contention_ratio >= 0.0);
        }
    }
}

#[test]
fn figure4_smoke() {
    let rows = fig4_overhead(&quick());
    assert!(!rows.is_empty());
    for row in &rows {
        assert!(row.no_executor > 0.0);
        assert!(row.executor > 0.0);
    }
}

#[test]
fn tree_and_list_smoke() {
    let results = tree_list(&quick());
    // 2 structures x 3 distributions.
    assert_eq!(results.len(), 6);
    for (structure, _, rows) in results {
        assert!(
            rows.iter().all(|r| r.completed > 0),
            "{structure} produced empty rows"
        );
    }
}

#[test]
fn contention_and_balance_smoke() {
    let contention = contention_table(&quick(), DistributionKind::Uniform);
    assert_eq!(contention.len(), 9);
    let balance = balance_table(
        &quick(),
        StructureKind::HashTable,
        DistributionKind::exponential_paper(),
    );
    assert_eq!(balance.len(), 3);
    for (_, per_worker, imbalance) in balance {
        assert!(!per_worker.is_empty());
        assert!(imbalance >= 1.0);
    }
}

#[test]
fn options_quick_mode_is_used_by_these_tests() {
    let opts = quick();
    assert!(opts.duration() <= std::time::Duration::from_millis(50));
    assert_eq!(opts.repetitions(), 1);
}
