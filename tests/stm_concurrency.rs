//! Cross-crate STM stress tests (via the facade's `katme::{Stm, TVar}` re-exports): serializability of composed operations over
//! the real data structures under heavy multi-threaded contention.

use std::sync::Arc;

use katme::{ClockMode, Stm, StmConfig, TVar};
use katme_collections::{Dictionary, HashTable, RbTree, TxDictionary, TxStack};

/// Atomically moving entries between two structures must never lose or
/// duplicate values, even under contention.
#[test]
fn atomic_moves_between_structures_conserve_entries() {
    let stm = Stm::default();
    let source = Arc::new(HashTable::with_buckets(stm.clone(), 509));
    let target = Arc::new(RbTree::new(stm.clone()));
    let total = 2_000u32;
    for key in 0..total {
        source.insert(key, u64::from(key));
    }

    std::thread::scope(|s| {
        for t in 0..4u32 {
            let stm = stm.clone();
            let source = Arc::clone(&source);
            let target = Arc::clone(&target);
            s.spawn(move || {
                for key in (t..total).step_by(4) {
                    stm.atomically(|tx| {
                        if let Some(value) = source.lookup_tx(tx, key)? {
                            source.remove_tx(tx, key)?;
                            target.insert_tx(tx, key, value)?;
                        }
                        Ok(())
                    });
                }
            });
        }
    });

    assert_eq!(source.len(), 0, "every entry should have been moved");
    assert_eq!(target.len(), total as usize);
    for key in 0..total {
        assert_eq!(target.lookup(key), Some(u64::from(key)));
    }
    assert!(target.check_invariants().is_ok());
}

/// A transactional producer/consumer chain through two stacks plus a counter:
/// the number of items that ever "exist" is invariant.
#[test]
fn stack_handoff_is_linearizable() {
    let stm = Stm::default();
    let inbox: Arc<TxStack<u64>> = Arc::new(TxStack::new(stm.clone()));
    let outbox: Arc<TxStack<u64>> = Arc::new(TxStack::new(stm.clone()));
    let moved = Arc::new(TVar::new(0u64));
    let items = 3_000u64;

    for i in 0..items {
        inbox.push(i);
    }

    std::thread::scope(|s| {
        for _ in 0..3 {
            let stm = stm.clone();
            let inbox = Arc::clone(&inbox);
            let outbox = Arc::clone(&outbox);
            let moved = Arc::clone(&moved);
            s.spawn(move || loop {
                let done = stm.atomically(|tx| match inbox.pop_tx(tx)? {
                    Some(v) => {
                        outbox.push_tx(tx, v)?;
                        tx.modify(&moved, |m| m + 1)?;
                        Ok(false)
                    }
                    None => Ok(true),
                });
                if done {
                    break;
                }
            });
        }
    });

    assert_eq!(*moved.load(), items);
    assert_eq!(outbox.len(), items as usize);
    assert!(inbox.is_empty());
    // No item was duplicated.
    let mut seen = std::collections::HashSet::new();
    while let Some(v) = outbox.pop() {
        assert!(seen.insert(v), "duplicate item {v}");
    }
    assert_eq!(seen.len(), items as usize);
}

/// Disjoint-key linearizability under both clock disciplines: threads own
/// disjoint variable sets (the commit-path fast case — GV5-lazy commits
/// never touch the global clock here), every committed increment must land
/// exactly once, and cross-set audit reads must always see consistent
/// paired snapshots.
#[test]
fn disjoint_key_commits_linearize_under_both_clock_modes() {
    for mode in [ClockMode::Ticked, ClockMode::Lazy] {
        let stm = Stm::new(StmConfig::default().with_clock_mode(mode));
        let threads = 4usize;
        let vars_per_thread = 8usize;
        let increments = 1_000u64;
        // Each worker owns a disjoint slice; slots within a slice are kept
        // equal by writing the pair [2k, 2k+1] together.
        let vars: Vec<Vec<TVar<u64>>> = (0..threads)
            .map(|_| (0..vars_per_thread).map(|_| TVar::new(0)).collect())
            .collect();

        std::thread::scope(|s| {
            for mine in &vars {
                let stm = stm.clone();
                s.spawn(move || {
                    for i in 0..increments {
                        let pair = 2 * (i as usize % (vars_per_thread / 2));
                        stm.atomically(|tx| {
                            let v = *tx.read(&mine[pair])?;
                            tx.write(&mine[pair], v + 1)?;
                            tx.write(&mine[pair + 1], v + 1)?;
                            Ok(())
                        });
                    }
                });
            }
            // Auditors cut across every thread's slice: paired slots must
            // never be observed mid-update.
            for _ in 0..2 {
                let stm = stm.clone();
                let vars = &vars;
                s.spawn(move || {
                    for _ in 0..500 {
                        for mine in vars {
                            for pair in (0..vars_per_thread).step_by(2) {
                                let (x, y) = stm.atomically(|tx| {
                                    Ok((*tx.read(&mine[pair])?, *tx.read(&mine[pair + 1])?))
                                });
                                assert_eq!(x, y, "{mode}: torn pair");
                            }
                        }
                    }
                });
            }
        });

        // Exact final counts: no committed increment lost or duplicated.
        let per_pair = increments / (vars_per_thread as u64 / 2);
        for mine in &vars {
            for var in mine {
                assert_eq!(stm.read_now(var), per_pair, "{mode}: lost update");
            }
        }
    }
}

/// Mixed-lane linearizability under both clock disciplines: MV blocks
/// repeatedly increment counters 0..8 while single-version transactions
/// increment the overlapping range 4..16, with a read-only auditor cutting
/// across both lanes. Every committed increment — block-published or
/// single-version — must land exactly once, and atomic snapshots must
/// never observe a torn or regressing state. This is the hybrid's core
/// safety claim: blocks publish as one composite committer that single
/// -version transactions serialize against like any other writer.
#[test]
fn mixed_lane_commits_linearize_under_both_clock_modes() {
    use katme::{run_block_with, MvOp};
    for mode in [ClockMode::Ticked, ClockMode::Lazy] {
        let stm = Stm::new(StmConfig::default().with_clock_mode(mode));
        let counters: Vec<TVar<u64>> = (0..16).map(|_| TVar::new(0)).collect();
        let blocks = 40u64;
        let block_len = 16u64;
        let sv_increments = 840u64; // divisible by the 12 overlap counters

        std::thread::scope(|s| {
            // MV side: two threads, each publishing `blocks` sequential
            // blocks; op j of a block increments counters[j % 8]. The two
            // threads' blocks race each other at publish (exercising the
            // base-invalidation retry path) as well as the single-version
            // writers below.
            for _ in 0..2 {
                let stm = stm.clone();
                let counters = &counters;
                s.spawn(move || {
                    for _ in 0..blocks {
                        let ops: Vec<MvOp<'_, ()>> = (0..block_len)
                            .map(|j| {
                                let stm = stm.clone();
                                let var = &counters[(j % 8) as usize];
                                MvOp::new(move || {
                                    stm.atomically(|tx| {
                                        let v = *tx.read(var)?;
                                        tx.write(var, v + 1)
                                    });
                                })
                                .with_key(j % 8)
                            })
                            .collect();
                        run_block_with(&stm, ops, 2);
                    }
                });
            }
            // Single-version side: two threads cycling over counters
            // 4..16 — the lower half of their range contends with the MV
            // blocks, the upper half only with each other.
            for _ in 0..2 {
                let stm = stm.clone();
                let counters = &counters;
                s.spawn(move || {
                    for i in 0..sv_increments {
                        let var = &counters[(4 + i % 12) as usize];
                        stm.atomically(|tx| {
                            let v = *tx.read(var)?;
                            tx.write(var, v + 1)
                        });
                    }
                });
            }
            // Auditor: full-array snapshots are consistent, so the total
            // is monotone — a torn block publish would show a regression
            // or an overshoot.
            {
                let stm = stm.clone();
                let counters = &counters;
                s.spawn(move || {
                    let expected = 2 * blocks * block_len + 2 * sv_increments;
                    let mut last = 0u64;
                    for _ in 0..300 {
                        let sum = stm.atomically(|tx| {
                            let mut sum = 0u64;
                            for var in counters {
                                sum += *tx.read(var)?;
                            }
                            Ok(sum)
                        });
                        assert!(sum >= last, "{mode}: snapshot total regressed");
                        assert!(sum <= expected, "{mode}: snapshot overshot");
                        last = sum;
                    }
                });
            }
        });

        // Exact conservation, per counter: 2 threads x `blocks` blocks x 2
        // ops per counter for the MV half; 2 threads x 70 visits for the
        // single-version half; both where the ranges overlap.
        let mv_share = 2 * blocks * (block_len / 8);
        let sv_share = 2 * (sv_increments / 12);
        for (index, var) in counters.iter().enumerate() {
            let expected = match index {
                0..=3 => mv_share,
                4..=7 => mv_share + sv_share,
                _ => sv_share,
            };
            assert_eq!(
                stm.read_now(var),
                expected,
                "{mode}: counter {index} lost or duplicated an increment"
            );
        }
    }
}

/// Read-only audit transactions over a structure being mutated concurrently
/// must always observe a consistent snapshot (opacity).
#[test]
fn read_only_snapshots_are_consistent() {
    let stm = Stm::default();
    let a = TVar::new(0i64);
    let b = TVar::new(0i64);

    std::thread::scope(|s| {
        // Writer: keeps a + b == 0 in every committed state.
        {
            let stm = stm.clone();
            let (a, b) = (a.clone(), b.clone());
            s.spawn(move || {
                for i in 1..2_000i64 {
                    stm.atomically(|tx| {
                        tx.write(&a, i)?;
                        tx.write(&b, -i)?;
                        Ok(())
                    });
                }
            });
        }
        // Readers: must never observe a + b != 0.
        for _ in 0..2 {
            let stm = stm.clone();
            let (a, b) = (a.clone(), b.clone());
            s.spawn(move || {
                for _ in 0..2_000 {
                    let sum = stm.atomically(|tx| Ok(*tx.read(&a)? + *tx.read(&b)?));
                    assert_eq!(sum, 0, "torn read: invariant violated");
                }
            });
        }
    });
}
