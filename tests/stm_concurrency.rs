//! Cross-crate STM stress tests (via the facade's `katme::{Stm, TVar}` re-exports): serializability of composed operations over
//! the real data structures under heavy multi-threaded contention.

use std::sync::Arc;

use katme::{ClockMode, Stm, StmConfig, TVar};
use katme_collections::{Dictionary, HashTable, RbTree, TxDictionary, TxStack};

/// Atomically moving entries between two structures must never lose or
/// duplicate values, even under contention.
#[test]
fn atomic_moves_between_structures_conserve_entries() {
    let stm = Stm::default();
    let source = Arc::new(HashTable::with_buckets(stm.clone(), 509));
    let target = Arc::new(RbTree::new(stm.clone()));
    let total = 2_000u32;
    for key in 0..total {
        source.insert(key, u64::from(key));
    }

    std::thread::scope(|s| {
        for t in 0..4u32 {
            let stm = stm.clone();
            let source = Arc::clone(&source);
            let target = Arc::clone(&target);
            s.spawn(move || {
                for key in (t..total).step_by(4) {
                    stm.atomically(|tx| {
                        if let Some(value) = source.lookup_tx(tx, key)? {
                            source.remove_tx(tx, key)?;
                            target.insert_tx(tx, key, value)?;
                        }
                        Ok(())
                    });
                }
            });
        }
    });

    assert_eq!(source.len(), 0, "every entry should have been moved");
    assert_eq!(target.len(), total as usize);
    for key in 0..total {
        assert_eq!(target.lookup(key), Some(u64::from(key)));
    }
    assert!(target.check_invariants().is_ok());
}

/// A transactional producer/consumer chain through two stacks plus a counter:
/// the number of items that ever "exist" is invariant.
#[test]
fn stack_handoff_is_linearizable() {
    let stm = Stm::default();
    let inbox: Arc<TxStack<u64>> = Arc::new(TxStack::new(stm.clone()));
    let outbox: Arc<TxStack<u64>> = Arc::new(TxStack::new(stm.clone()));
    let moved = Arc::new(TVar::new(0u64));
    let items = 3_000u64;

    for i in 0..items {
        inbox.push(i);
    }

    std::thread::scope(|s| {
        for _ in 0..3 {
            let stm = stm.clone();
            let inbox = Arc::clone(&inbox);
            let outbox = Arc::clone(&outbox);
            let moved = Arc::clone(&moved);
            s.spawn(move || loop {
                let done = stm.atomically(|tx| match inbox.pop_tx(tx)? {
                    Some(v) => {
                        outbox.push_tx(tx, v)?;
                        tx.modify(&moved, |m| m + 1)?;
                        Ok(false)
                    }
                    None => Ok(true),
                });
                if done {
                    break;
                }
            });
        }
    });

    assert_eq!(*moved.load(), items);
    assert_eq!(outbox.len(), items as usize);
    assert!(inbox.is_empty());
    // No item was duplicated.
    let mut seen = std::collections::HashSet::new();
    while let Some(v) = outbox.pop() {
        assert!(seen.insert(v), "duplicate item {v}");
    }
    assert_eq!(seen.len(), items as usize);
}

/// Disjoint-key linearizability under both clock disciplines: threads own
/// disjoint variable sets (the commit-path fast case — GV5-lazy commits
/// never touch the global clock here), every committed increment must land
/// exactly once, and cross-set audit reads must always see consistent
/// paired snapshots.
#[test]
fn disjoint_key_commits_linearize_under_both_clock_modes() {
    for mode in [ClockMode::Ticked, ClockMode::Lazy] {
        let stm = Stm::new(StmConfig::default().with_clock_mode(mode));
        let threads = 4usize;
        let vars_per_thread = 8usize;
        let increments = 1_000u64;
        // Each worker owns a disjoint slice; slots within a slice are kept
        // equal by writing the pair [2k, 2k+1] together.
        let vars: Vec<Vec<TVar<u64>>> = (0..threads)
            .map(|_| (0..vars_per_thread).map(|_| TVar::new(0)).collect())
            .collect();

        std::thread::scope(|s| {
            for mine in &vars {
                let stm = stm.clone();
                s.spawn(move || {
                    for i in 0..increments {
                        let pair = 2 * (i as usize % (vars_per_thread / 2));
                        stm.atomically(|tx| {
                            let v = *tx.read(&mine[pair])?;
                            tx.write(&mine[pair], v + 1)?;
                            tx.write(&mine[pair + 1], v + 1)?;
                            Ok(())
                        });
                    }
                });
            }
            // Auditors cut across every thread's slice: paired slots must
            // never be observed mid-update.
            for _ in 0..2 {
                let stm = stm.clone();
                let vars = &vars;
                s.spawn(move || {
                    for _ in 0..500 {
                        for mine in vars {
                            for pair in (0..vars_per_thread).step_by(2) {
                                let (x, y) = stm.atomically(|tx| {
                                    Ok((*tx.read(&mine[pair])?, *tx.read(&mine[pair + 1])?))
                                });
                                assert_eq!(x, y, "{mode}: torn pair");
                            }
                        }
                    }
                });
            }
        });

        // Exact final counts: no committed increment lost or duplicated.
        let per_pair = increments / (vars_per_thread as u64 / 2);
        for mine in &vars {
            for var in mine {
                assert_eq!(stm.read_now(var), per_pair, "{mode}: lost update");
            }
        }
    }
}

/// Read-only audit transactions over a structure being mutated concurrently
/// must always observe a consistent snapshot (opacity).
#[test]
fn read_only_snapshots_are_consistent() {
    let stm = Stm::default();
    let a = TVar::new(0i64);
    let b = TVar::new(0i64);

    std::thread::scope(|s| {
        // Writer: keeps a + b == 0 in every committed state.
        {
            let stm = stm.clone();
            let (a, b) = (a.clone(), b.clone());
            s.spawn(move || {
                for i in 1..2_000i64 {
                    stm.atomically(|tx| {
                        tx.write(&a, i)?;
                        tx.write(&b, -i)?;
                        Ok(())
                    });
                }
            });
        }
        // Readers: must never observe a + b != 0.
        for _ in 0..2 {
            let stm = stm.clone();
            let (a, b) = (a.clone(), b.clone());
            s.spawn(move || {
                for _ in 0..2_000 {
                    let sum = stm.atomically(|tx| Ok(*tx.read(&a)? + *tx.read(&b)?));
                    assert_eq!(sum, 0, "torn read: invariant violated");
                }
            });
        }
    });
}
