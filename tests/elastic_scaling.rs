//! Integration acceptance suite for the elastic execution plane: resize
//! safety through the facade, controller-driven growth under saturation,
//! and the stats surface (active workers, steals, resizes, adaptation-log
//! entries).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use katme::{
    AdaptationCause, AdaptiveKeyScheduler, ArrivalRamp, Katme, KeyBounds, Scheduler, WithKey,
};

/// Forced grow/shrink cycles while producers submit handle-bearing batches
/// through the facade: every handle resolves, nothing is lost or executed
/// twice (the facade-level mirror of the executor's swap-mid-stream test).
#[test]
fn forced_resizes_mid_stream_lose_and_duplicate_nothing() {
    let scheduler = Arc::new(
        AdaptiveKeyScheduler::new(2, KeyBounds::dict16())
            .with_worker_range(1, 6)
            .with_sample_threshold(500),
    );
    let seen = Arc::new(std::sync::Mutex::new(std::collections::HashSet::new()));
    let seen_clone = Arc::clone(&seen);
    let runtime = Arc::new(
        Katme::builder()
            .scheduler_instance(Arc::clone(&scheduler) as Arc<dyn Scheduler>)
            .build(move |_worker, task: WithKey<u64>| {
                assert!(
                    seen_clone.lock().unwrap().insert(task.task),
                    "task {} ran twice",
                    task.task
                );
                task.task
            })
            .unwrap(),
    );
    assert_eq!(runtime.workers(), 6, "slot capacity is the range ceiling");
    assert_eq!(runtime.active_workers(), 2);

    let producers = 3u64;
    let batches = 20u64;
    let batch_len = 50u64;
    let done = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        {
            let scheduler = Arc::clone(&scheduler);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                for &target in [4usize, 1, 6, 2, 1, 5]
                    .iter()
                    .cycle()
                    .take_while(|_| !done.load(Ordering::Relaxed))
                {
                    scheduler.resize_now(target);
                    std::thread::sleep(Duration::from_micros(400));
                }
            });
        }
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let runtime = Arc::clone(&runtime);
                scope.spawn(move || {
                    let mut resolved = 0u64;
                    for b in 0..batches {
                        let base = (p * batches + b) * batch_len;
                        let batch: Vec<WithKey<u64>> = (0..batch_len)
                            .map(|i| WithKey::new((base + i) * 131 % 65_536, base + i))
                            .collect();
                        for handle in runtime.submit_batch(batch).unwrap() {
                            let value = handle.wait().unwrap();
                            assert!(value < producers * batches * batch_len);
                            resolved += 1;
                        }
                    }
                    resolved
                })
            })
            .collect();
        let resolved: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        done.store(true, Ordering::Relaxed);
        assert_eq!(resolved, producers * batches * batch_len);
    });

    let stats = runtime.stats();
    assert!(stats.resizes > 0, "resizes must have happened mid-stream");
    assert!(
        stats
            .adaptations
            .iter()
            .any(|event| matches!(event.cause, AdaptationCause::Resize { .. })),
        "resize events must appear in the adaptation log: {:?}",
        stats.adaptations
    );
    let total = producers * batches * batch_len;
    assert_eq!(stats.completed, total);
    assert_eq!(
        stats.per_worker_completed.iter().sum::<u64>() + stats.steals + stats.adopted,
        total,
        "origin accounting must tile the task set"
    );
    assert_eq!(seen.lock().unwrap().len() as u64, total, "no task lost");

    let runtime = Arc::into_inner(runtime).expect("producer clones dropped");
    let report = runtime.shutdown();
    assert_eq!(report.completed, total);
    assert!(report.resizes > 0);
    assert!((1..=6).contains(&report.active_workers));
}

/// Saturation-driven growth: an elastic runtime whose workers are slower
/// than its producers must grow its pool within a few epochs (backlog over
/// the saturation threshold, zero aborts), and every task still executes.
#[test]
fn elastic_runtime_grows_under_saturation() {
    let executed = Arc::new(AtomicU64::new(0));
    let executed_clone = Arc::clone(&executed);
    let runtime = Katme::builder()
        .workers(1)
        .min_workers(1)
        .max_workers(4)
        .sample_threshold(400)
        .adaptation_interval(500)
        .max_queue_depth(None)
        .build(move |_worker, task: WithKey<u64>| {
            executed_clone.fetch_add(1, Ordering::Relaxed);
            // Slow enough that dispatch outruns execution and the backlog
            // crosses the saturation threshold at every epoch boundary.
            std::thread::sleep(Duration::from_micros(100));
            task.task
        })
        .unwrap();
    assert_eq!(runtime.active_workers(), 1);

    let total = 6_000u64;
    for chunk in 0..(total / 500) {
        let batch: Vec<WithKey<u64>> = (0..500u64)
            .map(|i| {
                let id = chunk * 500 + i;
                WithKey::new(id * 31 % 65_536, id)
            })
            .collect();
        runtime.submit_batch_detached(batch).unwrap();
    }
    let grown = runtime.active_workers();
    assert!(
        grown > 1,
        "a saturated elastic pool must grow: still at {grown} workers, stats {:?}",
        runtime.stats().adaptations
    );
    let report = runtime.shutdown();
    assert_eq!(report.completed, total, "growth must not lose work");
    assert_eq!(executed.load(Ordering::Relaxed), total);
    assert!(report.resizes >= 1);
}

/// Dormant never-activated slots of an elastic pool must not skew the
/// imbalance metric: a balanced 2-of-8 pool reads ~1.0, not 4.0.
#[test]
fn dormant_slots_do_not_skew_imbalance() {
    let runtime = Katme::builder()
        .workers(2)
        .min_workers(2)
        .max_workers(8)
        .build(|_worker, task: WithKey<u64>| task.task)
        .unwrap();
    let batch: Vec<WithKey<u64>> = (0..2_000u64).map(|i| WithKey::new(i * 33, i)).collect();
    for handle in runtime.submit_batch(batch).unwrap() {
        handle.wait().unwrap();
    }
    let stats = runtime.stats();
    assert_eq!(stats.per_worker_completed.len(), 8, "full-capacity vector");
    assert!(
        stats.imbalance() < 2.5,
        "dormant slots must not count toward imbalance: {:?}",
        stats.per_worker_completed
    );
    let report = runtime.shutdown();
    assert!(
        report.load.per_worker.len() <= 2,
        "shutdown load trims dormant trailing slots: {:?}",
        report.load.per_worker
    );
    assert_eq!(report.load.total() + report.stolen + report.adopted, 2_000);
}

/// The driver's ramp plumbing: a ramped windowed run reports the
/// active-worker trace per window and a fixed pool stays at full width.
#[test]
fn ramped_windowed_run_reports_active_worker_traces() {
    use katme::{Driver, DriverConfig, StructureKind};
    use katme_workload::DistributionKind;

    let config = DriverConfig::new()
        .with_workers(2)
        .with_producers(2)
        .with_duration(Duration::from_millis(120))
        .with_preload(200)
        .with_ramp(ArrivalRamp::quiet_burst_quiet(0.1));
    let (result, windows) = Driver::new(config).run_dictionary_windowed(
        StructureKind::HashTable,
        DistributionKind::Uniform,
        3,
    );
    assert!(result.completed > 0);
    assert_eq!(result.resizes, 0, "fixed pools never resize");
    assert_eq!(windows.len(), 3);
    for window in &windows {
        assert_eq!(window.active_workers, 2, "{window:?}");
    }
}
