//! Acceptance tests for the continuous adaptation plane, end to end through
//! the facade: a mid-run phase shift must trigger at least one
//! re-adaptation and leave the partition re-balanced for the new hot range,
//! while a stationary run of equal length must never repartition after the
//! initial adaptation (the hysteresis guarantee).

use std::time::Duration;

use katme::{AdaptationCause, Katme, KeyPartition, WithKey};
use katme_workload::{DistributionKind, KeyDistribution};

/// Workers used by every run in this file.
const WORKERS: usize = 4;
/// Raw 17-bit key space (matches the paper's generator).
const KEY_MAX: u64 = 131_071;
/// Samples before the initial adaptation and per continuous epoch.
const EPOCH: u64 = 2_000;

fn adaptive_runtime() -> katme::Runtime<WithKey<()>, ()> {
    Katme::builder()
        .workers(WORKERS)
        .key_range(0, KEY_MAX)
        .sample_threshold(EPOCH as usize)
        .adaptation_interval(EPOCH)
        .drift_threshold(0.2)
        .build(|_worker, _task: WithKey<()>| {})
        .expect("valid adaptation configuration")
}

fn submit_keys(
    runtime: &katme::Runtime<WithKey<()>, ()>,
    dist: &mut KeyDistribution,
    count: usize,
    mirror: bool,
) {
    for _ in 0..count {
        let key = u64::from(dist.sample_raw());
        let key = if mirror { KEY_MAX - key } else { key };
        runtime.submit_detached(WithKey::new(key, ())).unwrap();
    }
}

fn routed_imbalance(partition: &KeyPartition, dist: &mut KeyDistribution, mirror: bool) -> f64 {
    let mut counts = [0u64; WORKERS];
    for _ in 0..20_000 {
        let key = u64::from(dist.sample_raw());
        let key = if mirror { KEY_MAX - key } else { key };
        counts[partition.worker_for(key)] += 1;
    }
    let max = *counts.iter().max().unwrap() as f64;
    let mean = counts.iter().sum::<u64>() as f64 / WORKERS as f64;
    max / mean
}

/// A mid-run phase shift (exponential mass jumping from the low end of the
/// key space to the mirrored high end) must produce at least one
/// re-adaptation, logged as a key-drift event, and the post-drift partition
/// must route the new traffic with per-worker imbalance below 1.5x.
#[test]
fn phase_shift_triggers_re_adaptation_and_rebalances() {
    let runtime = adaptive_runtime();
    let mut dist = KeyDistribution::new(DistributionKind::exponential_paper(), 41);

    // Phase 1: two epochs of low-end keys — the initial adaptation.
    submit_keys(&runtime, &mut dist, 2 * EPOCH as usize, false);
    let stats = runtime.stats();
    assert_eq!(stats.repartitions, 1, "initial adaptation only: {stats:?}");
    assert_eq!(stats.partition_generation, 1);

    // Phase 2: the mirrored high end. The first drifted epoch arms the
    // trigger, the second confirms it.
    submit_keys(&runtime, &mut dist, 3 * EPOCH as usize, true);
    let stats = runtime.stats();
    assert!(
        stats.repartitions >= 2,
        "the phase shift must re-adapt: {:?}",
        stats.adaptations
    );
    let last = stats.adaptations.last().expect("log has entries");
    assert!(
        matches!(last.cause, AdaptationCause::KeyDrift { .. }),
        "re-adaptation must be attributed to key drift: {:?}",
        stats.adaptations
    );
    assert!(
        last.before_imbalance > last.after_imbalance,
        "the published partition must improve expected balance: {last:?}"
    );
    assert_eq!(stats.partition_generation, stats.repartitions);

    // The post-drift partition balances fresh phase-2 traffic.
    let partition = runtime
        .scheduler()
        .partition()
        .expect("adaptive scheduler exposes its partition");
    let imbalance = routed_imbalance(&partition, &mut dist, true);
    assert!(
        imbalance < 1.5,
        "post-drift partition must re-balance the shifted keys: {imbalance:.2}x"
    );

    let report = runtime.shutdown();
    assert_eq!(report.repartitions, report.adaptations.len() as u64);
}

/// A stationary run of the same length as the phase-shift run must never
/// repartition after the initial adaptation: the drift trigger's
/// projected-imbalance gate and two-epoch confirmation absorb sampling
/// noise entirely.
#[test]
fn stationary_run_of_equal_length_never_repartitions() {
    let runtime = adaptive_runtime();
    let mut dist = KeyDistribution::new(DistributionKind::exponential_paper(), 41);

    // Same total volume as the phase-shift test (5 epochs past threshold),
    // all from one stationary distribution.
    submit_keys(&runtime, &mut dist, 5 * EPOCH as usize, false);
    let stats = runtime.stats();
    assert_eq!(
        stats.repartitions, 1,
        "stationary load must hold the hysteresis: {:?}",
        stats.adaptations
    );
    assert_eq!(stats.adaptations.len(), 1);
    assert!(matches!(
        stats.adaptations[0].cause,
        AdaptationCause::Initial
    ));
    runtime.shutdown();
}

/// The repartition budget caps the adaptation plane: once spent, further
/// drift leaves the table untouched and the scheduler reports the same
/// generation forever after.
#[test]
fn repartition_budget_is_honoured_through_the_facade() {
    let runtime = Katme::builder()
        .workers(WORKERS)
        .key_range(0, KEY_MAX)
        .sample_threshold(EPOCH as usize)
        .adaptation_interval(EPOCH)
        .drift_threshold(0.2)
        .max_repartitions(Some(1))
        .build(|_worker, _task: WithKey<()>| {})
        .expect("valid adaptation configuration");
    let mut dist = KeyDistribution::new(DistributionKind::exponential_paper(), 43);

    submit_keys(&runtime, &mut dist, 2 * EPOCH as usize, false);
    submit_keys(&runtime, &mut dist, 3 * EPOCH as usize, true); // spends the budget
    let after_shift = runtime.stats().repartitions;
    assert_eq!(after_shift, 2, "{:?}", runtime.stats().adaptations);

    // A second sustained shift back to the low end: budget spent, no change.
    submit_keys(&runtime, &mut dist, 3 * EPOCH as usize, false);
    assert_eq!(runtime.stats().repartitions, after_shift);
    runtime.shutdown();
}

/// The windowed driver report exposes the adaptation plane's response to a
/// phase shift under a real dictionary workload: the continuous scheduler
/// ends the run with lower per-worker imbalance than the one-shot
/// scheduler on the same traffic.
#[test]
fn windowed_driver_run_shows_continuous_rebalancing() {
    use katme::{Driver, DriverConfig, SchedulerKind};
    use katme_collections::StructureKind;

    let config = |continuous: bool| {
        let mut config = DriverConfig::new()
            .with_workers(4)
            .with_producers(4)
            .with_scheduler(SchedulerKind::AdaptiveKey)
            .with_sample_threshold(1_000)
            .with_duration(Duration::from_millis(250))
            .with_preload(1_000)
            .with_seed(7);
        if continuous {
            config = config
                .with_adaptation_interval(1_000)
                .with_drift_threshold(0.2);
        }
        config
    };
    // The phase shift lands after 2 000 per-producer samples — early in the
    // window, so most of the run is post-shift traffic.
    let distribution = DistributionKind::phased(2_000);
    let (one_shot, _) =
        Driver::new(config(false)).run_dictionary_windowed(StructureKind::RbTree, distribution, 4);
    let (continuous, windows) =
        Driver::new(config(true)).run_dictionary_windowed(StructureKind::RbTree, distribution, 4);

    assert_eq!(one_shot.repartitions, 1, "one-shot adapts exactly once");
    assert!(
        continuous.repartitions >= 2,
        "continuous must re-adapt after the shift: {continuous:?}"
    );
    assert_eq!(windows.len(), 4);
    // On few-core hosts the one-shot run occasionally lands balanced by
    // scheduling luck, so strict "better than one-shot" is noise-sensitive
    // when both runs are near-flat. The real claim is that continuous
    // adaptation ends the run well balanced: demand the win outright OR a
    // near-flat absolute imbalance (the post-shift one-shot failure mode
    // this test guards against reads 5-6x).
    let continuous_imbalance = continuous.load.imbalance();
    let one_shot_imbalance = one_shot.load.imbalance();
    assert!(
        continuous_imbalance < one_shot_imbalance || continuous_imbalance < 1.5,
        "continuous adaptation must leave the workers well balanced: \
         continuous {continuous_imbalance:.2}x vs one-shot {one_shot_imbalance:.2}x"
    );
}
