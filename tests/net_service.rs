//! Loopback integration tests for the network service plane: the pipelined
//! wire protocol in front of a real runtime, exercising queue-full
//! pushback, per-connection ordering across in-flight windows, and the
//! shutdown drain — the contracts `katme-server`'s unit tests can only
//! state, not prove end-to-end.

use std::time::Duration;

use katme::Katme;
use katme_server::{Client, Command, Reply, ServeExt, ServerConfig};

const KEY_SPACE: u64 = u32::MAX as u64;

/// A pipelined flood against one slow worker behind a tiny queue: the
/// accepted prefix of each burst completes normally, the rejected
/// remainder is answered `-BUSY` (not dropped, not reordered), and the
/// server's own pushback counter agrees with the client's count.
#[test]
fn pipelined_pushback_under_full_queue() {
    let burst = 128usize;
    let server = Katme::builder()
        .workers(1)
        .key_range(0, KEY_SPACE)
        .max_queue_depth(Some(4))
        .serve_with(
            "127.0.0.1:0",
            ServerConfig::default()
                .with_op_delay(Duration::from_micros(100))
                .with_inflight_window(burst),
        )
        .expect("bind loopback server");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let cmds: Vec<Command> = (0..burst)
        .map(|i| Command::Put {
            key: i as u32,
            value: i as u64 + 7,
        })
        .collect();
    client.send(&cmds).expect("flood send");
    let replies = client.recv_n(burst).expect("flood recv");
    assert_eq!(replies.len(), burst, "every pipeline slot must be answered");

    let mut ok = 0u64;
    let mut busy = 0u64;
    for reply in &replies {
        match reply {
            Reply::Int(_) => ok += 1,
            Reply::Busy => busy += 1,
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert!(busy > 0, "a 128-burst against queue depth 4 must push back");
    assert!(ok > 0, "the accepted prefix must still complete");
    assert_eq!(ok + busy, burst as u64, "no command may be dropped");

    // A `-BUSY` command was *not* executed: its key must be retryable and
    // the connection must still be usable after pushback.
    let retry = client.request(Command::Ping).expect("post-pushback ping");
    assert_eq!(retry, Reply::Ok);

    let report = server.shutdown();
    let net = report.net.expect("server runtimes carry net counters");
    assert_eq!(
        net.pushback_busy, busy,
        "server-side -BUSY tally must match the client's"
    );
    assert!(net.commands > burst as u64);
    assert!(net.replies > burst as u64);
}

/// A long PUT-then-GET script pipelined in one write: every GET must
/// observe its preceding PUT even though the server executes the stream as
/// window-sized concurrent batches — per-key submission order survives the
/// whole decode → batch → keyed-dispatch → reply path, across window
/// boundaries.
#[test]
fn per_connection_order_survives_windowed_batching() {
    let total = 512usize;
    let server = Katme::builder()
        .workers(4)
        .key_range(0, KEY_SPACE)
        .serve_with(
            "127.0.0.1:0",
            // A small window forces many batch boundaries inside the script.
            ServerConfig::default().with_inflight_window(16),
        )
        .expect("bind loopback server");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let cmds: Vec<Command> = (0..total)
        .map(|i| {
            let key = (i / 2) as u32;
            if i % 2 == 0 {
                Command::Put {
                    key,
                    value: key as u64 + 1_000,
                }
            } else {
                Command::Get { key }
            }
        })
        .collect();
    client.send(&cmds).expect("pipelined send");
    let replies = client.recv_n(total).expect("drain replies");
    for (i, reply) in replies.iter().enumerate() {
        let key = (i / 2) as u64;
        let expected = if i % 2 == 0 {
            Reply::Int(1) // fresh key: newly inserted
        } else {
            Reply::Int(key + 1_000) // the GET must see the PUT before it
        };
        assert_eq!(*reply, expected, "reply {i} out of order");
    }
    server.shutdown();
}

/// Shutdown drains in-flight work: replies already owed to a connection are
/// written before its socket closes, and the final report carries the
/// connection-plane counters.
#[test]
fn shutdown_drains_owed_replies() {
    let total = 64usize;
    let server = Katme::builder()
        .workers(2)
        .key_range(0, KEY_SPACE)
        .serve_with(
            "127.0.0.1:0",
            // Slow commands keep the batch genuinely in flight while the
            // shutdown below overlaps it.
            ServerConfig::default().with_op_delay(Duration::from_millis(1)),
        )
        .expect("bind loopback server");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let cmds: Vec<Command> = (0..total)
        .map(|i| Command::Put {
            key: i as u32,
            value: i as u64,
        })
        .collect();
    client.send(&cmds).expect("pipelined send");
    // Let the burst reach the decoder (loopback delivery is sub-millisecond;
    // the executor then owes ~64 ms of slowed command work), so the shutdown
    // below genuinely overlaps in-flight replies.
    std::thread::sleep(Duration::from_millis(20));

    // Shut down while the replies are still in flight; the drain contract
    // says they reach the socket before it closes.
    let report = server.shutdown();
    let replies = client.recv_n(total).expect("owed replies after shutdown");
    assert_eq!(replies.len(), total);
    assert!(
        replies.iter().all(|reply| !reply.is_error()),
        "drained commands must complete, not be abandoned"
    );

    let net = report.net.expect("report carries net counters");
    assert!(net.accepted >= 1);
    assert!(net.commands >= total as u64);
    assert!(net.replies >= total as u64);
    assert_eq!(net.connected, 0, "all connections closed at shutdown");
}

/// STATS round-trips through the wire protocol and reflects executed work.
#[test]
fn stats_reports_over_the_wire() {
    let server = Katme::builder()
        .workers(2)
        .key_range(0, KEY_SPACE)
        .serve("127.0.0.1:0")
        .expect("bind loopback server");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    for i in 0..10u32 {
        let reply = client
            .request(Command::Put {
                key: i,
                value: u64::from(i),
            })
            .expect("put");
        assert_eq!(reply, Reply::Int(1));
    }
    let reply = client.request(Command::Stats).expect("stats");
    let Reply::Bulk(body) = reply else {
        panic!("STATS must reply with a bulk body, got {reply:?}");
    };
    let completed = katme_server::stat_value(&body, "completed").expect("completed stat");
    assert!(completed >= 10, "stats must reflect executed commands");
    server.shutdown();
}
