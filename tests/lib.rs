//! Shared helpers for the cross-crate integration tests.
//!
//! The actual test files live next to this library (see `Cargo.toml`'s
//! `[[test]]` entries); this crate only exports small utilities they share.

use katme_collections::{DictOp, Dictionary};
use katme_workload::{OpKind, TxnSpec};

/// Convert a generated transaction spec into a dictionary operation.
pub fn spec_to_op(spec: &TxnSpec) -> DictOp {
    match spec.op {
        OpKind::Insert => DictOp::Insert {
            key: spec.key,
            value: spec.value,
        },
        OpKind::Delete => DictOp::Remove { key: spec.key },
        OpKind::Lookup => DictOp::Lookup { key: spec.key },
    }
}

/// Apply a spec to a dictionary (insert/remove/lookup) — delegates to the
/// facade's canonical mapping.
pub fn apply(dict: &dyn Dictionary, spec: &TxnSpec) {
    katme::apply_spec(dict, spec);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_to_op_preserves_key_and_kind() {
        let spec = TxnSpec {
            key: 9,
            value: 3,
            op: OpKind::Insert,
        };
        assert_eq!(spec_to_op(&spec), DictOp::Insert { key: 9, value: 3 });
        let del = TxnSpec {
            key: 4,
            value: 0,
            op: OpKind::Delete,
        };
        assert_eq!(spec_to_op(&del), DictOp::Remove { key: 4 });
    }
}
