//! Review probe: an MvOp whose closure runs TWO writing atomically calls.
use katme::{run_block, MvOp, Stm, TVar};

#[test]
fn op_with_two_atomically_calls_keeps_both_writes() {
    let stm = Stm::default();
    let a = TVar::new(0u64);
    let b = TVar::new(0u64);
    let ops: Vec<MvOp<'_, ()>> = vec![{
        let (stm, a, b) = (stm.clone(), a.clone(), b.clone());
        MvOp::new(move || {
            stm.atomically(|tx| tx.write(&a, 1));
            stm.atomically(|tx| tx.write(&b, 2));
        })
    }];
    run_block(&stm, ops);
    assert_eq!(stm.read_now(&b), 2, "second atomically's write");
    assert_eq!(stm.read_now(&a), 1, "first atomically's write must survive");
}
