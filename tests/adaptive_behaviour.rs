//! Integration tests for the adaptive scheduler's behaviour in the full
//! pipeline: it must balance skewed loads that defeat the fixed scheduler and
//! must not degrade uniform loads, mirroring the paper's Figure 3 claims as
//! *correctness-style* assertions (ratios, not absolute throughput).

use std::sync::Arc;
use std::time::Duration;

use katme::{
    AdaptiveKeyScheduler, Driver, DriverConfig, Katme, KeyBounds, Scheduler, SchedulerKind,
};
use katme_collections::StructureKind;
use katme_workload::{DistributionKind, KeyDistribution};

fn quick_config(workers: usize, scheduler: SchedulerKind) -> DriverConfig {
    DriverConfig::new()
        .with_workers(workers)
        .with_scheduler(scheduler)
        .with_duration(Duration::from_millis(120))
        .with_preload(2_000)
}

/// Under the exponential key distribution the fixed scheduler funnels nearly
/// every transaction to one worker while the adaptive scheduler spreads them.
/// (The adaptive run includes the pre-adaptation sampling phase, during which
/// it behaves like the fixed scheduler, so the comparison is relative.)
#[test]
fn adaptive_balances_exponential_load_fixed_does_not() {
    let config = |scheduler| quick_config(4, scheduler).with_duration(Duration::from_millis(250));
    let fixed = Driver::new(config(SchedulerKind::FixedKey)).run_dictionary(
        StructureKind::HashTable,
        DistributionKind::exponential_paper(),
    );
    let adaptive = Driver::new(config(SchedulerKind::AdaptiveKey)).run_dictionary(
        StructureKind::HashTable,
        DistributionKind::exponential_paper(),
    );

    assert!(
        fixed.load.imbalance() > 1.8,
        "fixed should be badly imbalanced, got {:?}",
        fixed.load
    );
    assert!(
        adaptive.load.imbalance() < fixed.load.imbalance() * 0.8,
        "adaptive ({:.2}) should be clearly better balanced than fixed ({:.2}): {:?}",
        adaptive.load.imbalance(),
        fixed.load.imbalance(),
        adaptive.load
    );
    assert!(adaptive.completed > 0 && fixed.completed > 0);
}

/// The adaptive scheduler's dispatch decisions keep neighbouring keys
/// together (locality) even after it has rebalanced for skew.
#[test]
fn adaptive_keeps_locality_after_rebalancing() {
    let scheduler =
        AdaptiveKeyScheduler::new(8, KeyBounds::new(0, 131_071)).with_sample_threshold(2_000);
    let mut dist = KeyDistribution::new(DistributionKind::exponential_paper(), 5);
    for _ in 0..4_000 {
        scheduler.dispatch(u64::from(dist.sample_raw()));
    }
    assert!(scheduler.is_adapted());
    let partition = scheduler.current_partition();
    // Contiguity: the partition ranges tile the key space in order.
    let mut previous_end: Option<u64> = None;
    for worker in 0..partition.workers() {
        if let Some((lo, hi)) = partition.range_of(worker) {
            if let Some(prev) = previous_end {
                assert_eq!(lo, prev + 1, "ranges must be contiguous");
            }
            assert!(lo <= hi);
            previous_end = Some(hi);
        }
    }
    assert_eq!(previous_end, Some(131_071));
}

/// Uniform keys: the adaptive scheduler should not do noticeably worse than
/// the fixed scheduler in load balance (both are near-perfect), and both
/// should beat round-robin on locality (measured via distinct workers per
/// key neighbourhood).
#[test]
fn adaptive_matches_fixed_on_uniform_keys() {
    let fixed = Driver::new(quick_config(4, SchedulerKind::FixedKey))
        .run_dictionary(StructureKind::HashTable, DistributionKind::Uniform);
    let adaptive = Driver::new(quick_config(4, SchedulerKind::AdaptiveKey))
        .run_dictionary(StructureKind::HashTable, DistributionKind::Uniform);
    assert!(adaptive.load.imbalance() < 1.8, "{:?}", adaptive.load);
    assert!(fixed.load.imbalance() < 1.8, "{:?}", fixed.load);
}

/// The scheduler adapts exactly once by default, after the paper's 10,000
/// sample threshold (checked through the public facade pipeline, including
/// the live repartition counter in the stats view).
#[test]
fn adaptation_happens_once_at_the_threshold() {
    let scheduler =
        Arc::new(AdaptiveKeyScheduler::new(4, KeyBounds::dict16()).with_sample_threshold(10_000));
    let runtime = Katme::builder()
        .scheduler_instance(Arc::clone(&scheduler) as Arc<dyn katme::Scheduler>)
        .build(|_, _task: u64| {})
        .expect("valid configuration");
    for i in 0..9_999u64 {
        runtime.submit_detached(i % 65_536).unwrap();
    }
    // One short of the threshold: still running the fixed partition.
    assert!(!scheduler.is_adapted());
    assert_eq!(runtime.stats().repartitions, 0);
    for i in 0..5_000u64 {
        runtime.submit_detached(i % 65_536).unwrap();
    }
    assert!(scheduler.is_adapted());
    assert_eq!(scheduler.adaptations(), 1);
    assert_eq!(runtime.stats().repartitions, 1);
    let report = runtime.shutdown();
    assert_eq!(report.repartitions, 1);
}

/// Throughput sanity for the paper's headline comparison: with several
/// workers on a skewed distribution, the adaptive executor should complete at
/// least as many transactions as the fixed executor (allowing a generous
/// margin for noise on small machines).
#[test]
fn adaptive_is_not_slower_than_fixed_on_skewed_keys() {
    let mut fixed_total = 0u64;
    let mut adaptive_total = 0u64;
    for rep in 0..3u64 {
        let fixed = Driver::new(quick_config(4, SchedulerKind::FixedKey).with_seed(rep))
            .run_dictionary(
                StructureKind::HashTable,
                DistributionKind::exponential_paper(),
            );
        let adaptive = Driver::new(quick_config(4, SchedulerKind::AdaptiveKey).with_seed(rep))
            .run_dictionary(
                StructureKind::HashTable,
                DistributionKind::exponential_paper(),
            );
        fixed_total += fixed.completed;
        adaptive_total += adaptive.completed;
    }
    assert!(
        adaptive_total as f64 >= fixed_total as f64 * 0.7,
        "adaptive ({adaptive_total}) should not trail fixed ({fixed_total}) badly"
    );
}
