//! Integration tests for the `katme` facade itself: builder validation,
//! typed task handles across all three executor models, non-blocking
//! submission errors, batch submission (handle delivery, FIFO, partial
//! queue-full failure), and prompt shutdown of blocked producers.

use std::sync::Arc;
use std::time::Duration;

use katme::{
    BuilderError, ExecutorModel, Katme, KatmeError, KeyedTask, QueueKind, SchedulerKind, TxnKey,
    WithKey,
};

/// A self-routing task: squares its payload, scheduled by its payload.
/// `Clone` because batch submission may re-execute tasks through the
/// multi-version lane.
#[derive(Clone)]
struct Square(u64);

impl KeyedTask for Square {
    fn key(&self) -> TxnKey {
        self.0 % 1_024
    }
}

#[test]
fn builder_rejects_invalid_configurations() {
    let zero_workers = Katme::builder()
        .workers(0)
        .build(|_, t: u64| t)
        .unwrap_err();
    assert!(matches!(
        zero_workers,
        KatmeError::InvalidConfig(BuilderError::ZeroWorkers)
    ));

    let inverted = Katme::builder()
        .key_range(50, 5)
        .build(|_, t: u64| t)
        .unwrap_err();
    assert!(
        matches!(
            inverted,
            KatmeError::InvalidConfig(BuilderError::InvertedKeyBounds { min: 50, max: 5 })
        ),
        "{inverted}"
    );

    let zero_depth = Katme::builder()
        .max_queue_depth(Some(0))
        .build(|_, t: u64| t)
        .unwrap_err();
    assert!(matches!(
        zero_depth,
        KatmeError::InvalidConfig(BuilderError::ZeroQueueDepth)
    ));

    // The adaptation-plane validation gap, closed: a zero epoch length and
    // an out-of-range drift threshold are typed build-time rejections, not
    // silently degenerate runtime behaviour.
    let zero_interval = Katme::builder()
        .adaptation_interval(0)
        .build(|_, t: u64| t)
        .unwrap_err();
    assert!(matches!(
        zero_interval,
        KatmeError::InvalidConfig(BuilderError::ZeroAdaptationInterval)
    ));
    for bad in [0.0, -0.3, 1.5, f64::NAN] {
        let err = Katme::builder()
            .drift_threshold(bad)
            .build(|_, t: u64| t)
            .unwrap_err();
        assert!(
            matches!(
                err,
                KatmeError::InvalidConfig(BuilderError::DriftThresholdOutOfRange { .. })
            ),
            "drift_threshold {bad} must be rejected: {err}"
        );
    }
}

#[test]
fn task_handles_observe_results_in_every_executor_model() {
    for model in ExecutorModel::ALL {
        let runtime = Katme::builder()
            .workers(2)
            .model(model)
            .key_range(0, 1_023)
            .build(|_worker, task: Square| task.0 * task.0)
            .expect("valid configuration");

        // Await one handle...
        let awaited = runtime.submit(Square(9)).unwrap();
        assert_eq!(awaited.wait().unwrap(), 81, "{model}");

        // ...poll another to completion...
        let polled = runtime.submit(Square(12)).unwrap();
        let mut result = None;
        for _ in 0..10_000 {
            if let Some(r) = polled.poll() {
                result = Some(r);
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(result, Some(Ok(144)), "{model}");

        // ...and push a batch whose handles all resolve by shutdown time.
        let handles: Vec<_> = (0..100u64)
            .map(|i| runtime.submit(Square(i)).unwrap())
            .collect();
        for (i, handle) in handles.into_iter().enumerate() {
            assert_eq!(
                handle.wait_timeout(Duration::from_secs(10)).unwrap(),
                (i * i) as u64,
                "{model}"
            );
        }

        let report = runtime.shutdown();
        assert_eq!(report.completed, 102, "{model}");
        assert_eq!(report.abandoned, 0, "{model}");
    }
}

#[test]
fn submit_batch_delivers_one_handle_per_task_in_every_executor_model() {
    for model in ExecutorModel::ALL {
        for queue in [QueueKind::TwoLock, QueueKind::Mutex, QueueKind::Sharded] {
            let runtime = Katme::builder()
                .workers(2)
                .model(model)
                .queue(queue)
                .key_range(0, 1_023)
                .build(|_worker, task: Square| task.0 * task.0)
                .expect("valid configuration");

            let handles = runtime
                .submit_batch((0..200u64).map(Square).collect())
                .expect("batch accepted");
            assert_eq!(handles.len(), 200, "{model}/{queue:?}");
            for (i, handle) in handles.into_iter().enumerate() {
                assert_eq!(
                    handle.wait_timeout(Duration::from_secs(10)).unwrap(),
                    (i * i) as u64,
                    "{model}/{queue:?}: handles are in submission order"
                );
            }
            let report = runtime.shutdown();
            assert_eq!(report.completed, 200, "{model}/{queue:?}");
            assert_eq!(report.abandoned, 0, "{model}/{queue:?}");
        }
    }
}

#[test]
fn try_submit_batch_reports_partial_failure_with_accepted_handles() {
    // One slow worker with a tiny depth bound: a large non-blocking batch is
    // partially accepted. The error must carry a handle for every accepted
    // task (each of which resolves) and hand the rejected tasks back in
    // order, ready for resubmission.
    let runtime = Katme::builder()
        .workers(1)
        .scheduler(SchedulerKind::RoundRobin)
        .max_queue_depth(Some(4))
        .batch_size(2)
        .build(|_worker, task: u64| {
            std::thread::sleep(Duration::from_millis(2));
            task
        })
        .expect("valid configuration");

    let err = runtime
        .try_submit_batch((0..100u64).collect())
        .expect_err("a depth bound of 4 cannot take 100 tasks at once");
    assert_eq!(err.error, KatmeError::QueueFull);
    assert!(err.is_partial(), "the first few tasks fit under the bound");
    assert_eq!(err.accepted, err.handles.len());
    assert_eq!(err.accepted + err.rejected.len(), 100);
    // Rejected tasks come back in submission order: the accepted prefix is
    // 0..accepted, so the remainder starts right after it.
    assert_eq!(err.rejected[0], err.accepted as u64);
    let accepted = err.accepted;
    let rejected = err.rejected;
    for (i, handle) in err.handles.into_iter().enumerate() {
        assert_eq!(
            handle.wait_timeout(Duration::from_secs(10)).unwrap(),
            i as u64,
            "every accepted task resolves its handle"
        );
    }
    // Retrying the remainder (blocking) completes the full workload.
    let retry_handles = runtime.submit_batch(rejected).expect("retry accepted");
    assert_eq!(retry_handles.len(), 100 - accepted);
    let report = runtime.shutdown();
    assert_eq!(report.completed, 100);
}

#[test]
fn batch_of_one_and_empty_batch_behave_like_the_single_task_api() {
    let runtime = Katme::builder()
        .workers(2)
        .build(|_worker, task: WithKey<u64>| task.task + 1)
        .expect("valid configuration");
    let empty = runtime.submit_batch(Vec::new()).unwrap();
    assert!(empty.is_empty());
    let one = runtime.submit_batch(vec![WithKey::new(3, 41)]).unwrap();
    assert_eq!(one.len(), 1);
    assert_eq!(one.into_iter().next().unwrap().wait().unwrap(), 42);
    assert_eq!(runtime.submit_batch_detached(Vec::new()).unwrap(), 0);
    runtime.shutdown();
}

#[test]
fn batch_submission_after_stop_returns_every_task() {
    let runtime = Katme::builder()
        .workers(1)
        .build(|_worker, task: u64| task)
        .expect("valid configuration");
    runtime.stop();
    let err = runtime
        .submit_batch((0..10u64).collect())
        .expect_err("stopped runtime accepts nothing");
    assert_eq!(err.error, KatmeError::ShuttingDown);
    assert_eq!(err.accepted, 0);
    assert!(err.handles.is_empty());
    assert_eq!(err.into_rejected(), (0..10u64).collect::<Vec<_>>());
    runtime.shutdown();
}

#[test]
fn try_submit_reports_queue_full_under_a_tiny_depth_bound() {
    // One slow worker, depth bound 2: a burst of try_submit calls must hit
    // QueueFull rather than blocking or silently spinning.
    let runtime = Katme::builder()
        .workers(1)
        .scheduler(SchedulerKind::RoundRobin)
        .max_queue_depth(Some(2))
        .build(|_worker, task: u64| {
            std::thread::sleep(Duration::from_millis(4));
            task
        })
        .expect("valid configuration");

    let mut rejected = 0u32;
    let mut accepted = 0u32;
    for i in 0..200u64 {
        match runtime.try_submit_detached(i) {
            Ok(()) => accepted += 1,
            Err(KatmeError::QueueFull) => rejected += 1,
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(rejected > 0, "depth bound of 2 must reject under a burst");
    assert!(accepted > 0, "some submissions must get through");
    let report = runtime.shutdown();
    assert_eq!(
        report.completed,
        u64::from(accepted),
        "drain executes all accepted tasks"
    );
}

#[test]
fn stopped_runtime_rejects_and_unblocks_producers() {
    // Queue bound 1 and a slow worker: a producer blocked inside a
    // back-pressured submit must return ShuttingDown promptly when another
    // thread stops the runtime (the old raw-executor API span forever and
    // then pushed onto the dead queue).
    let runtime = Arc::new(
        Katme::builder()
            .workers(1)
            .scheduler(SchedulerKind::RoundRobin)
            .max_queue_depth(Some(1))
            .drain_on_shutdown(false)
            .build(|_worker, task: u64| {
                std::thread::sleep(Duration::from_millis(600));
                task
            })
            .expect("valid configuration"),
    );

    runtime.submit_detached(1).unwrap();
    std::thread::sleep(Duration::from_millis(50)); // worker picks up task 1
    runtime.submit_detached(2).unwrap(); // fills the queue to its bound

    let blocked = {
        let runtime = Arc::clone(&runtime);
        std::thread::spawn(move || runtime.submit_detached(3))
    };
    std::thread::sleep(Duration::from_millis(100));
    runtime.stop();
    assert_eq!(blocked.join().unwrap(), Err(KatmeError::ShuttingDown));
    assert!(!runtime.is_running());
    assert_eq!(runtime.submit_detached(4), Err(KatmeError::ShuttingDown));

    let runtime = Arc::into_inner(runtime).expect("blocked producer exited");
    let report = runtime.shutdown();
    assert!(
        report.abandoned >= 1,
        "task 2 was never drained: {report:?}"
    );
}

#[test]
fn handles_of_abandoned_tasks_resolve_as_abandoned() {
    let runtime = Katme::builder()
        .workers(1)
        .scheduler(SchedulerKind::RoundRobin)
        .drain_on_shutdown(false)
        .build(|_worker, task: u64| {
            std::thread::sleep(Duration::from_millis(300));
            task
        })
        .expect("valid configuration");
    let first = runtime.submit(1).unwrap();
    std::thread::sleep(Duration::from_millis(50)); // worker starts task 1
    let queued: Vec<_> = (0..50u64).map(|i| runtime.submit(i).unwrap()).collect();
    runtime.stop();
    let report = runtime.shutdown();
    assert!(report.abandoned > 0);
    assert_eq!(first.wait().unwrap(), 1);
    let abandoned = queued
        .into_iter()
        .filter(|handle| handle.poll() == Some(Err(KatmeError::TaskAbandoned)))
        .count() as u64;
    assert_eq!(
        abandoned, report.abandoned,
        "every abandoned task's handle resolves as such"
    );
}

#[test]
fn centralized_stop_with_drain_executes_every_accepted_task() {
    // stop() closes intake but, with draining on (the default), the central
    // dispatcher and the workers keep going until every accepted task ran —
    // no handle may resolve as abandoned.
    let runtime = Katme::builder()
        .workers(2)
        .model(ExecutorModel::Centralized)
        .build(|_worker, task: u64| task + 1)
        .expect("valid configuration");
    let handles: Vec<_> = (0..2_000u64).map(|i| runtime.submit(i).unwrap()).collect();
    runtime.stop();
    assert_eq!(
        runtime.try_submit_detached(9),
        Err(KatmeError::ShuttingDown)
    );
    let report = runtime.shutdown();
    assert_eq!(report.completed, 2_000);
    assert_eq!(report.abandoned, 0);
    for (i, handle) in handles.into_iter().enumerate() {
        assert_eq!(handle.wait().unwrap(), i as u64 + 1);
    }
}

#[test]
fn centralized_stop_without_drain_accounts_for_every_task() {
    // Without draining, tasks the dispatcher can no longer forward (workers
    // stopped) are dropped — but each drop must be counted as abandoned and
    // resolve its handle, so completed + abandoned covers every submission.
    let runtime = Katme::builder()
        .workers(1)
        .model(ExecutorModel::Centralized)
        .drain_on_shutdown(false)
        .build(|_worker, task: u64| {
            std::thread::sleep(Duration::from_micros(500));
            task
        })
        .expect("valid configuration");
    let handles: Vec<_> = (0..500u64).map(|i| runtime.submit(i).unwrap()).collect();
    std::thread::sleep(Duration::from_millis(20));
    runtime.stop();
    let report = runtime.shutdown();
    let mut completed = 0u64;
    let mut abandoned = 0u64;
    for handle in handles {
        match handle.wait() {
            Ok(_) => completed += 1,
            Err(KatmeError::TaskAbandoned) => abandoned += 1,
            Err(other) => panic!("unexpected handle state: {other}"),
        }
    }
    assert_eq!(completed, report.completed);
    assert_eq!(abandoned, report.abandoned);
    assert_eq!(completed + abandoned, 500, "{report:?}");
}

#[test]
fn centralized_model_live_stats_expose_the_dispatch_queue() {
    let runtime = Katme::builder()
        .workers(2)
        .model(ExecutorModel::Centralized)
        .queue(QueueKind::Mutex)
        .build(|_worker, task: u64| task + 1)
        .expect("valid configuration");
    let handles: Vec<_> = (0..500u64).map(|i| runtime.submit(i).unwrap()).collect();
    let stats = runtime.stats();
    assert_eq!(stats.model, ExecutorModel::Centralized);
    assert_eq!(stats.workers, 2);
    assert_eq!(stats.queue_depths.len(), 2);
    for handle in handles {
        handle.wait_timeout(Duration::from_secs(10)).unwrap();
    }
    let report = runtime.shutdown();
    assert_eq!(report.completed, 500);
}

#[test]
fn stats_view_reports_progress_and_throughput() {
    let runtime = Katme::builder()
        .workers(2)
        .build(|_worker, task: WithKey<u64>| task.task)
        .expect("valid configuration");
    for i in 0..1_000u64 {
        runtime.submit_detached(WithKey::new(i % 100, i)).unwrap();
    }
    // Wait for the drain.
    let mut stats = runtime.stats();
    for _ in 0..10_000 {
        if stats.completed == 1_000 {
            break;
        }
        std::thread::yield_now();
        stats = runtime.stats();
    }
    assert_eq!(stats.submitted, 1_000);
    assert_eq!(stats.completed, 1_000);
    assert_eq!(stats.per_worker_completed.iter().sum::<u64>(), 1_000);
    assert_eq!(stats.per_worker_throughput().len(), 2);
    assert!(stats.throughput() > 0.0);
    assert_eq!(stats.backlog(), 0);
    assert!(stats.imbalance() >= 1.0);
    runtime.shutdown();
}
