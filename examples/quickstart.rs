//! Quickstart: build a transactional hash table, wire up the adaptive
//! key-based executor, and push a stream of dictionary transactions through
//! it.
//!
//! ```text
//! cargo run --release -p katme-examples --example quickstart
//! ```

use std::sync::Arc;

use katme_collections::{Dictionary, HashTable};
use katme_core::prelude::*;
use katme_stm::Stm;
use katme_workload::{DistributionKind, OpGenerator, OpKind};

fn main() {
    // 1. An STM runtime (Polka contention management, as in the paper) and a
    //    hash table with the paper's 30031 buckets built on top of it.
    let stm = Stm::default();
    let table = Arc::new(HashTable::new(stm.clone()));

    // 2. An adaptive key-based scheduler over the bucket-index key space and
    //    four workers, and an executor feeding them.
    let scheduler = Arc::new(AdaptiveKeyScheduler::new(
        4,
        KeyBounds::new(0, katme_collections::PAPER_BUCKETS as u64 - 1),
    ));
    let table_for_workers = Arc::clone(&table);
    let executor = Executor::start(
        ExecutorConfig::default().with_drain_on_shutdown(true),
        scheduler.clone(),
        move |_worker, spec: katme_workload::TxnSpec| match spec.op {
            OpKind::Insert => {
                table_for_workers.insert(spec.key, spec.value);
            }
            OpKind::Delete => {
                table_for_workers.remove(spec.key);
            }
            OpKind::Lookup => {
                table_for_workers.lookup(spec.key);
            }
        },
    );

    // 3. A producer: generate 50,000 insert/delete transactions with a skewed
    //    (exponential) key distribution and submit them keyed by bucket index.
    let mapper = BucketKeyMapper::paper();
    let mut generator = OpGenerator::paper(DistributionKind::exponential_paper(), 42);
    for _ in 0..50_000 {
        let spec = generator.next_spec();
        executor.submit(mapper.key(&spec), spec);
    }

    // 4. Drain and report.
    let report = executor.shutdown();
    println!("executed  : {} transactions", report.completed());
    println!("per worker: {:?}", report.load.per_worker);
    println!("imbalance : {:.2} (1.00 = perfectly even)", report.load.imbalance());
    println!("adapted   : {}", scheduler.describe());
    println!("table size: {} entries", table.len());
    println!(
        "stm       : {} commits, {} aborts",
        stm.snapshot().commits,
        stm.snapshot().total_aborts()
    );
}
