//! Quickstart: build a transactional hash table, stand up the adaptive
//! key-based runtime with `Katme::builder()`, and push a stream of
//! dictionary transactions through it — watching the live stats on the way.
//!
//! ```text
//! cargo run --release -p katme-examples --example quickstart
//! ```

use std::sync::Arc;

use katme::{BucketKeyMapper, Katme, KeyMapper, Stm, WithKey};
use katme_collections::{Dictionary, HashTable};
use katme_workload::{DistributionKind, OpGenerator, OpKind, TxnSpec};

fn main() {
    // 1. An STM runtime (Polka contention management, as in the paper) and a
    //    hash table with the paper's 30031 buckets built on top of it.
    let stm = Stm::default();
    let table = Arc::new(HashTable::new(stm.clone()));

    // 2. One builder call composes scheduler, key space, queues, workers and
    //    STM into a validated runtime. The handler is what workers run.
    let table_for_workers = Arc::clone(&table);
    let runtime = Katme::builder()
        .workers(4)
        .key_range(0, katme_collections::PAPER_BUCKETS as u64 - 1)
        .stm(stm.clone())
        .build(move |_worker, task: WithKey<TxnSpec>| {
            let spec = task.task;
            match spec.op {
                OpKind::Insert => {
                    table_for_workers.insert(spec.key, spec.value);
                }
                OpKind::Delete => {
                    table_for_workers.remove(spec.key);
                }
                OpKind::Lookup => {
                    table_for_workers.lookup(spec.key);
                }
            }
        })
        .expect("valid configuration");

    // 3. A producer: generate 50,000 insert/delete transactions with a skewed
    //    (exponential) key distribution, keyed by bucket index (§4.2). The
    //    first submission returns a typed handle we can await.
    let mapper = BucketKeyMapper::paper();
    let mut generator = OpGenerator::paper(DistributionKind::exponential_paper(), 42);
    let first_spec = generator.next_spec();
    let first = runtime
        .submit(WithKey::new(mapper.key(&first_spec), first_spec))
        .expect("runtime is accepting work");
    for _ in 1..50_000 {
        let spec = generator.next_spec();
        runtime
            .submit_detached(WithKey::new(mapper.key(&spec), spec))
            .expect("runtime is accepting work");
    }
    first.wait().expect("first transaction executed");

    // 4. Live stats are available *before* shutdown…
    let live = runtime.stats();
    println!(
        "mid-run    : {} done, backlog {}, {} repartitions",
        live.completed,
        live.backlog(),
        live.repartitions
    );

    // 5. …and the terminal report summarizes the whole run.
    let report = runtime.shutdown();
    println!("executed  : {} transactions", report.completed);
    println!("per worker: {:?}", report.load.per_worker);
    println!(
        "imbalance : {:.2} (1.00 = perfectly even)",
        report.load.imbalance()
    );
    println!("table size: {} entries", table.len());
    println!(
        "stm       : {} commits, {} aborts ({:.4} aborts/commit)",
        report.stm.commits,
        report.stm.total_aborts(),
        report.abort_rate()
    );
}
