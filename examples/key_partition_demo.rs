//! Walk-through of the paper's Figure 2: sample a skewed key distribution,
//! build the histogram, estimate the CDF, and project equal-probability
//! bucket boundaries back onto the key axis. Uses the building blocks the
//! facade re-exports as `katme::core`.
//!
//! ```text
//! cargo run --release -p katme-examples --example key_partition_demo
//! ```

use katme::core::histogram::Histogram;
use katme::core::partition::KeyPartition;
use katme::core::sample_size::required_samples;
use katme::core::PiecewiseCdf;
use katme::KeyBounds;
use katme_workload::{DistributionKind, KeyDistribution};

fn main() {
    let workers = 4;
    let bounds = KeyBounds::new(0, 131_071);

    // (a) the unknown data distribution: the paper's exponential generator.
    let mut dist = KeyDistribution::new(DistributionKind::exponential_paper(), 7);

    // How many samples do we need? (The paper: 10,000 for 95% confidence of a
    // 99%-accurate CDF.)
    let n = required_samples(0.95, 0.01);
    println!("samples required for 95% confidence / 99% accuracy: {n}");
    let samples: Vec<u64> = (0..n).map(|_| u64::from(dist.sample_raw())).collect();

    // (b) sample items into equal-width cells.
    let hist = Histogram::from_samples(bounds, 32, &samples);
    println!(
        "\nhistogram ({} cells, {} samples):",
        hist.cells(),
        hist.total()
    );
    let max = *hist.counts().iter().max().unwrap();
    for (cell, &count) in hist.counts().iter().enumerate().take(8) {
        let (lo, hi) = hist.cell_range(cell);
        let bar = "#".repeat((count * 40 / max.max(1)) as usize);
        println!("  [{lo:>6}..{hi:>6}] {count:>6} {bar}");
    }
    println!("  ... (remaining cells are nearly empty)");

    // (c)+(d) cumulative probabilities and the piecewise-linear CDF.
    let cdf = PiecewiseCdf::from_histogram(&hist);
    println!("\nestimated CDF:");
    for key in [500u64, 1_000, 2_000, 4_000, 8_000, 65_536] {
        println!("  P(key <= {key:>6}) = {:.3}", cdf.probability_at(key));
    }

    // (e) determine bucket boundaries by dividing the probability range into
    // equal buckets and projecting down onto the key axis.
    let adaptive = KeyPartition::from_cdf(&cdf, workers);
    let fixed = KeyPartition::equal_width(bounds, workers);
    println!("\nfixed (equal-width) partition:    {fixed}");
    println!("adaptive (PD-partition):          {adaptive}");

    // Show the resulting load balance for a fresh stream of keys.
    let mut counts_fixed = vec![0u64; workers];
    let mut counts_adaptive = vec![0u64; workers];
    for _ in 0..100_000 {
        let key = u64::from(dist.sample_raw());
        counts_fixed[fixed.worker_for(key)] += 1;
        counts_adaptive[adaptive.worker_for(key)] += 1;
    }
    println!("\nkeys routed per worker (100,000 fresh keys):");
    println!("  fixed    : {counts_fixed:?}");
    println!("  adaptive : {counts_adaptive:?}");
}
