//! The §3.1 stack example: every push/pop races for the top-of-stack
//! element, so the right transaction key is a *constant* — which tells the
//! executor to serialize all operations on one worker instead of bouncing
//! them (and their aborts) across the pool.
//!
//! ```text
//! cargo run --release -p katme-examples --example stack_hotspot
//! ```

use std::sync::Arc;
use std::time::Instant;

use katme::{Katme, SchedulerKind, Stm, WithKey};
use katme_collections::TxStack;

fn run(label: &str, scheduler: SchedulerKind, use_constant_key: bool) {
    let stm = Stm::default();
    let stack = Arc::new(TxStack::new(stm.clone()));
    let stack_for_workers = Arc::clone(&stack);
    let runtime = Katme::builder()
        .workers(4)
        .scheduler(scheduler)
        .stm(stm.clone())
        .build(move |_worker, task: WithKey<u64>| {
            // Each task is one transactional push (even values) or pop (odd).
            if task.task % 2 == 0 {
                stack_for_workers.push(task.task);
            } else {
                stack_for_workers.pop();
            }
        })
        .expect("valid configuration");

    let hot_key = stack.transaction_key();
    let started = Instant::now();
    for i in 0..40_000u64 {
        let key = if use_constant_key {
            hot_key // §3.1: a constant key serializes the hot spot
        } else {
            i % 65_536 // pretend the payload were a meaningful key
        };
        runtime
            .submit_detached(WithKey::new(key, i))
            .expect("runtime is accepting work");
    }
    let report = runtime.shutdown();
    let elapsed = started.elapsed();
    println!(
        "{label:>28}: {} ops in {elapsed:>10.2?}  ({} aborts, per-worker {:?})",
        report.completed,
        report.stm.total_aborts(),
        report.load.per_worker
    );
}

fn main() {
    println!("stack hot-spot: 40,000 push/pop transactions, 4 workers\n");
    // Scattering a hot spot across workers maximizes conflicts...
    run("round-robin (scattered)", SchedulerKind::RoundRobin, false);
    // ...while the constant transaction key routes every operation to one
    // worker, eliminating conflicts entirely at the cost of parallelism the
    // structure never had to begin with.
    run("fixed + constant key", SchedulerKind::FixedKey, true);
}
