//! The §3.1 stack example: every push/pop races for the top-of-stack
//! element, so the right transaction key is a *constant* — which tells the
//! executor to serialize all operations on one worker instead of bouncing
//! them (and their aborts) across the pool.
//!
//! ```text
//! cargo run --release -p katme-examples --example stack_hotspot
//! ```

use std::sync::Arc;
use std::time::Instant;

use katme_collections::TxStack;
use katme_core::key::ConstantKeyMapper;
use katme_core::prelude::*;
use katme_stm::Stm;

fn run(label: &str, scheduler: Arc<dyn Scheduler>, use_constant_key: bool) {
    let stm = Stm::default();
    let stack = Arc::new(TxStack::new(stm.clone()));
    let stack_for_workers = Arc::clone(&stack);
    let executor = Executor::start(
        ExecutorConfig::default().with_drain_on_shutdown(true),
        scheduler,
        move |_worker, value: u64| {
            // Each task is one transactional push (even values) or pop (odd).
            if value % 2 == 0 {
                stack_for_workers.push(value);
            } else {
                stack_for_workers.pop();
            }
        },
    );

    let constant = ConstantKeyMapper::new(stack.transaction_key());
    let started = Instant::now();
    for i in 0..40_000u64 {
        let key = if use_constant_key {
            KeyMapper::<u64>::key(&constant, &i)
        } else {
            i % 65_536 // pretend the payload were a meaningful key
        };
        executor.submit(key, i);
    }
    let report = executor.shutdown();
    let elapsed = started.elapsed();
    println!(
        "{label:>28}: {} ops in {elapsed:>10.2?}  ({} aborts, per-worker {:?})",
        report.completed(),
        stm.snapshot().total_aborts(),
        report.load.per_worker
    );
}

fn main() {
    println!("stack hot-spot: 40,000 push/pop transactions, 4 workers\n");
    // Scattering a hot spot across workers maximizes conflicts...
    run(
        "round-robin (scattered)",
        Arc::new(RoundRobinScheduler::new(4)),
        false,
    );
    // ...while the constant transaction key routes every operation to one
    // worker, eliminating conflicts entirely at the cost of parallelism the
    // structure never had to begin with.
    run(
        "fixed + constant key",
        Arc::new(FixedKeyScheduler::new(4, KeyBounds::dict16())),
        true,
    );
}
