//! A classic STM demonstration on the substrate behind the facade:
//! concurrent transfers between accounts never violate the
//! conservation-of-money invariant, and composed transactions (audit +
//! transfer) see consistent snapshots.
//!
//! ```text
//! cargo run --release -p katme-examples --example bank_transfer
//! ```

use std::sync::Arc;

use katme::{CmKind, Stm, TVar};

const ACCOUNTS: usize = 64;
const THREADS: usize = 4;
const TRANSFERS_PER_THREAD: usize = 5_000;
const INITIAL_BALANCE: i64 = 1_000;

fn main() {
    let stm = Stm::with_contention_manager(CmKind::Polka);
    let accounts: Arc<Vec<TVar<i64>>> =
        Arc::new((0..ACCOUNTS).map(|_| TVar::new(INITIAL_BALANCE)).collect());

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let stm = stm.clone();
            let accounts = Arc::clone(&accounts);
            s.spawn(move || {
                let mut x = t as u64 + 1;
                for _ in 0..TRANSFERS_PER_THREAD {
                    // Cheap deterministic pseudo-random account pair.
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let from = (x >> 33) as usize % ACCOUNTS;
                    let to = (x >> 13) as usize % ACCOUNTS;
                    let amount = (x % 50) as i64;
                    if from == to {
                        continue;
                    }
                    stm.atomically(|tx| {
                        let a = *tx.read(&accounts[from])?;
                        let b = *tx.read(&accounts[to])?;
                        if a >= amount {
                            tx.write(&accounts[from], a - amount)?;
                            tx.write(&accounts[to], b + amount)?;
                        }
                        Ok(())
                    });
                }
            });
        }

        // A concurrent auditor repeatedly sums every balance in one
        // transaction; thanks to snapshot consistency it always sees the full
        // amount of money.
        let stm_audit = stm.clone();
        let accounts_audit = Arc::clone(&accounts);
        s.spawn(move || {
            for _ in 0..200 {
                let total = stm_audit.atomically(|tx| {
                    let mut sum = 0i64;
                    for account in accounts_audit.iter() {
                        sum += *tx.read(account)?;
                    }
                    Ok(sum)
                });
                assert_eq!(
                    total,
                    (ACCOUNTS as i64) * INITIAL_BALANCE,
                    "auditor observed an inconsistent snapshot!"
                );
            }
        });
    });

    let total: i64 = accounts.iter().map(|a| *a.load()).sum();
    let snap = stm.snapshot();
    println!("accounts      : {ACCOUNTS}");
    println!(
        "final total   : {total} (expected {})",
        ACCOUNTS as i64 * INITIAL_BALANCE
    );
    println!("commits       : {}", snap.commits);
    println!("aborted tries : {}", snap.total_aborts());
    println!(
        "contention    : {:.4} aborts per commit",
        snap.contention_ratio()
    );
    assert_eq!(total, ACCOUNTS as i64 * INITIAL_BALANCE);
    println!("\nmoney was conserved under {THREADS} concurrent transfer threads + 1 auditor.");
}
