//! Shared helpers for the KATME examples.
//!
//! The runnable examples live next to this file; run them with e.g.
//! `cargo run --release -p katme-examples --example quickstart`.

/// Pretty-print a throughput number with thousands separators.
pub fn fmt_count(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::new();
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn fmt_count_groups_digits() {
        assert_eq!(super::fmt_count(1_234_567), "1,234,567");
        assert_eq!(super::fmt_count(42), "42");
    }
}
