//! Side-by-side comparison of the three schedulers on the paper's hash-table
//! benchmark with a skewed key distribution — a miniature, single-command
//! version of Figure 3's exponential panel.
//!
//! ```text
//! cargo run --release -p katme-examples --example adaptive_hashtable
//! ```

use std::time::Duration;

use katme::{Driver, DriverConfig, SchedulerKind};
use katme_collections::StructureKind;
use katme_workload::DistributionKind;

fn main() {
    let workers = 4;
    let distribution = DistributionKind::exponential_paper();
    println!("hash table, {distribution}, {workers} workers, 300 ms per run\n");
    println!(
        "{:>14}{:>16}{:>14}{:>12}",
        "scheduler", "throughput", "imbalance", "aborts/txn"
    );

    for scheduler in SchedulerKind::ALL {
        let config = DriverConfig::new()
            .with_workers(workers)
            .with_scheduler(scheduler)
            .with_duration(Duration::from_millis(300));
        let result = Driver::new(config).run_dictionary(StructureKind::HashTable, distribution);
        println!(
            "{:>14}{:>16}{:>14.2}{:>12.4}",
            scheduler.name(),
            katme_examples::fmt_count(result.throughput as u64),
            result.load.imbalance(),
            result.contention_ratio()
        );
    }

    println!(
        "\nExpected shape (paper §4.4): fixed partitioning collapses onto one worker for\n\
         the exponential distribution, round robin balances load but scatters locality,\n\
         and the adaptive executor gets both right."
    );
}
