//! Compare the three executor models of Figure 1 — no executor, a
//! centralized executor thread, and parallel executors — on the hash-table
//! benchmark. Each model is a single `.with_model(..)` away on the facade's
//! driver.
//!
//! ```text
//! cargo run --release -p katme-examples --example executor_models
//! ```

use std::time::Duration;

use katme::{Driver, DriverConfig, ExecutorModel, SchedulerKind};
use katme_collections::StructureKind;
use katme_workload::DistributionKind;

fn main() {
    println!("hash table, uniform keys, 4 workers, adaptive scheduling, 300 ms per run\n");
    println!("{:>14}{:>16}{:>14}", "model", "throughput", "produced");
    for model in ExecutorModel::ALL {
        let config = DriverConfig::new()
            .with_workers(4)
            .with_model(model)
            .with_scheduler(SchedulerKind::AdaptiveKey)
            .with_duration(Duration::from_millis(300));
        let result =
            Driver::new(config).run_dictionary(StructureKind::HashTable, DistributionKind::Uniform);
        println!(
            "{:>14}{:>16}{:>14}",
            model.name(),
            katme_examples::fmt_count(result.throughput as u64),
            katme_examples::fmt_count(result.produced)
        );
    }
    println!(
        "\nThe no-executor model has zero queuing overhead but cannot balance load or\n\
         overlap production with execution; the centralized model adds a dispatcher\n\
         thread that can become a bottleneck; the parallel model (the paper's choice)\n\
         runs dispatch inline in each producer."
    );
}
